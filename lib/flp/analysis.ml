module Make (P : Protocol.S) = struct
  module C = Config.Make (P)

  module Explore = struct
    type reduction = [ `None | `Persistent | `Sleep ]

    let reduction_name = function
      | `None -> "none"
      | `Persistent -> "persistent"
      | `Sleep -> "sleep"

    (* Lemma 1 as a pruning oracle: the model-agnostic analyzer only needs to
       know which process an event steps, whether it consumes a message, and
       the protocol's (hereditary) may-send over-approximation. *)
    module I = Indep.Make (struct
      type config = C.t

      type event = C.event

      let n = P.n

      let pid (e : C.event) = e.dest

      let is_delivery (e : C.event) = Option.is_some e.msg

      let may_send c ~src ~dst = C.may_send_to c src dst

      let annotated = C.footprints_annotated
    end)

    (* ---------------------------------------------------------------- *)
    (* Sharded intern table over packed keys                             *)
    (* ---------------------------------------------------------------- *)

    (* Interning used to funnel every successor through one [Hashtbl] keyed
       by whole configurations — the serial bottleneck that made the
       frontier explorer {e slower} with more cores.  The store now keys on
       {!C.Packed} byte strings with precomputed FNV hashes, split into
       [hash mod shards] shards (shard count independent of [jobs]).  The
       wave protocol is strictly phased:

       - {b probe} (parallel): workers pack each successor read-only and
         probe its shard — no domain writes the store while any domain
         reads it, so no locks are needed and no probe order can leak into
         the result;
       - {b merge} (sequential, frontier order): fresh configurations are
         assigned ids, packed (interning any new parts), and inserted.

       Every id, successor list, parent witness, sleep set and the
       truncation point is therefore decided by the same frontier-order
       merge the sequential explorer runs — bit-identical at every [jobs]
       and every [shards] value. *)

    module KTbl = Hashtbl.Make (struct
      type t = int * string  (* (precomputed FNV hash, packed key) *)

      let hash (h, _) = h

      let equal (h1, k1) (h2, k2) = h1 = h2 && String.equal k1 k2
    end)

    type store = {
      pstore : C.Packed.store;
      shards : int KTbl.t array;  (* (hash, key) -> id; shard = hash mod shard_count *)
      shard_count : int;
      mutable packed : string array;  (* id -> packed key *)
      mutable count : int;
      mutable bytes : int;  (* total packed bytes, for explore.packed.bytes *)
    }

    let store_create ~shards =
      {
        pstore = C.Packed.create ();
        shards = Array.init shards (fun _ -> KTbl.create 256);
        shard_count = shards;
        packed = [||];
        count = 0;
        bytes = 0;
      }

    let store_find st ~hash key =
      KTbl.find_opt st.shards.(hash mod st.shard_count) (hash, key)

    (* Merge phase only: never called while workers probe. *)
    let store_add st ~hash key =
      let id = st.count in
      if id >= Array.length st.packed then begin
        let na = Array.make (max 64 (2 * Array.length st.packed)) "" in
        Array.blit st.packed 0 na 0 id;
        st.packed <- na
      end;
      st.packed.(id) <- key;
      st.bytes <- st.bytes + String.length key;
      KTbl.add st.shards.(hash mod st.shard_count) (hash, key) id;
      st.count <- id + 1;
      id

    type graph = {
      store : store;
      mutable succs : (C.event * int) list array;
      mutable parents : (int * C.event option) array;  (* (parent, edge); root has (-1, None) *)
      mutable expanded_flags : Bytes.t;
      mutable complete_flag : bool;
      mutable edges : int;
      reduction : reduction;
      mutable sleeps : C.event list array;  (* stored sleep set per node; [`Sleep] only *)
      mutable pruned : int;  (* enabled events never explored (persistence) *)
      mutable sleep_hits : int;  (* enabled events delegated to a sibling branch *)
      mutable proviso_hits : int;  (* cycle-proviso full expansions *)
      mutable probes : int;  (* intern-table probes, probe + merge phases *)
    }

    let ensure_capacity g needed =
      let cap = Array.length g.succs in
      if needed > cap then begin
        let ncap = max 64 (max needed (2 * cap)) in
        let count = g.store.count in
        let grow_arr a fill =
          let na = Array.make ncap fill in
          Array.blit a 0 na 0 count;
          na
        in
        g.succs <- grow_arr g.succs [];
        g.parents <- grow_arr g.parents (-1, None);
        g.sleeps <- grow_arr g.sleeps [];
        let nb = Bytes.make ncap '\000' in
        Bytes.blit g.expanded_flags 0 nb 0 count;
        g.expanded_flags <- nb
      end

    let make_graph ~reduction ~shards =
      {
        store = store_create ~shards;
        succs = [||];
        parents = [||];
        expanded_flags = Bytes.empty;
        complete_flag = true;
        edges = 0;
        reduction;
        sleeps = [||];
        pruned = 0;
        sleep_hits = 0;
        proviso_hits = 0;
        probes = 0;
      }

    (* A work item: a node, its configuration (so the hot path never
       unpacks), and the sleep snapshot it was enqueued with.  With [`None]
       and [`Persistent] the snapshot is always empty. *)
    type entry = { node : int; cfg : C.t; sleep : C.event list }

    (* What the read-only probe learned about one successor.  [Dup] is
       final (the store only grows).  [New_key] carries the packed key and
       hash so the merge re-probes in O(1) — the config may have been
       interned earlier in the same wave.  [New_parts] means some internal
       state or message has never been interned, so the configuration is
       new relative to every {e previous} wave; the merge packs it (now
       interning the parts, sequentially and in frontier order) and
       re-probes to dedup within the wave. *)
    type succ_tag = Dup of int | New_key of string * int | New_parts

    let classify_succ g cfg' =
      match C.Packed.pack_ro g.store.pstore cfg' with
      | None -> New_parts
      | Some key -> (
          let h = C.Packed.hash key in
          match store_find g.store ~hash:h key with
          | Some id -> Dup id
          | None -> New_key (key, h))

    (* Merge-phase resolution of one successor; the only place the store is
       written. *)
    let resolve g ~max_configs tag cfg' =
      let finish ~hash key =
        g.probes <- g.probes + 1;
        match store_find g.store ~hash key with
        | Some id -> `Dup id
        | None ->
            if g.store.count >= max_configs then begin
              g.complete_flag <- false;
              `Truncated
            end
            else begin
              ensure_capacity g (g.store.count + 1);
              `Fresh (store_add g.store ~hash key)
            end
      in
      match tag with
      | Dup id -> `Dup id
      | New_key (key, h) -> finish ~hash:h key
      | New_parts ->
          let key = C.Packed.pack g.store.pstore cfg' in
          finish ~hash:(C.Packed.hash key) key

    (* The pure half of one entry's expansion: everything that depends only
       on the entry's configuration and sleep snapshot.  In frontier mode
       this runs on the worker pool; nothing here may read the visited set.

       [chosen] lists the events to explore, each with its successor
       configuration and the sleep set to hand that successor ("the branches
       tried before you, minus anything your own process touches" — distinct
       pids commute by Lemma 1, so those branches stay covered).  [deferred]
       keeps the rest of the enabled events so the cycle proviso can expand
       them without recomputing the plan. *)
    type plan = {
      chosen : (C.event * C.t * C.event list) list;
      deferred : C.event list;  (* live (non-self-loop) \ chosen, canonical order *)
      ample_pruned : int;  (* enabled events outside the ample set *)
      slept : int;  (* ample events delegated by the sleep snapshot *)
      partial : bool;  (* chosen is a strict subset of the enabled events *)
    }

    let compute_plan ~filter ~reduction cfg (sleep : C.event list) =
      let enabled = List.filter filter (C.events cfg) in
      match reduction with
      | `None ->
          {
            chosen = List.map (fun e -> (e, C.apply cfg e, [])) enabled;
            deferred = [];
            ample_pruned = 0;
            slept = 0;
            partial = false;
          }
      | (`Persistent | `Sleep) as red ->
          (* Null steps that change nothing ([s·t = s]) contribute nothing to
             reachability; dropping them up front keeps the ample seed from
             being wasted on a quiesced process.  Deliveries always at least
             shrink the buffer, so only null events need the check. *)
          let live =
            List.filter
              (fun (e : C.event) ->
                Option.is_some e.msg || not (C.equal (C.apply cfg e) cfg))
              enabled
          in
          let d = I.ample cfg live in
          let amp = d.I.events in
          let chosen_evs, slept =
            match red with
            | `Persistent -> (amp, 0)
            | `Sleep ->
                let in_sleep e = List.exists (C.event_equal e) sleep in
                let keep = List.filter (fun e -> not (in_sleep e)) amp in
                (keep, List.length amp - List.length keep)
          in
          let chosen =
            let rec go acc before = function
              | [] -> List.rev acc
              | t :: more ->
                  let z =
                    match red with
                    | `Persistent -> []
                    | `Sleep ->
                        List.filter
                          (fun (s : C.event) -> s.dest <> (t : C.event).dest)
                          (sleep @ List.rev before)
                  in
                  go ((t, C.apply cfg t, z) :: acc) (t :: before) more
            in
            go [] [] chosen_evs
          in
          let in_chosen e = List.exists (C.event_equal e) chosen_evs in
          let deferred = List.filter (fun e -> not (in_chosen e)) live in
          {
            chosen;
            deferred;
            ample_pruned = List.length enabled - List.length amp;
            slept;
            partial = deferred <> [];
          }

    (* The sequential, state-mutating half.  Every visited-set-dependent
       decision — duplicate detection, truncation, the cycle proviso, sleep
       intersection and requeueing — happens here, in queue/frontier order,
       which keeps the graph bit-identical across jobs levels and between
       the sequential and frontier drivers.

       Expansions are cumulative: a [`Sleep] node revisited with a strictly
       smaller sleep set is requeued and re-expanded, skipping edges already
       recorded, so its final successor list covers the ample set of its
       smallest sleep snapshot.  Pruned events produce neither edges nor
       [edges]-counter increments — only applied events count. *)
    (* [tags], when given, are the probe phase's verdicts for [plan.chosen]
       in order; without them (sequential driver, proviso expansions) each
       successor is classified inline — the store is quiescent either way,
       so the two paths resolve identically. *)
    let expand g ~max_configs ~push ~on_intern ~on_dup ~on_trunc ?tags u ~cfg plan =
      let first = Bytes.get g.expanded_flags u = '\000' in
      let existing = g.succs.(u) in
      let have e = List.exists (fun (e0, _) -> C.event_equal e0 e) existing in
      let fresh = ref false in
      let added = ref [] in
      let do_event tag (e, cfg', z) =
        if not (have e) then begin
          match resolve g ~max_configs tag cfg' with
          | `Dup v ->
              added := (e, v) :: !added;
              g.edges <- g.edges + 1;
              on_dup ();
              if g.reduction = `Sleep then begin
                (* Delegation to a sibling branch is only valid if every
                   path into [v] promises it: intersect, and if the promise
                   strictly shrank, re-expand with the smaller set. *)
                let stored = g.sleeps.(v) in
                let inter =
                  List.filter (fun s -> List.exists (C.event_equal s) z) stored
                in
                if List.length inter < List.length stored then begin
                  g.sleeps.(v) <- inter;
                  push { node = v; cfg = cfg'; sleep = inter }
                end
              end
          | `Truncated -> on_trunc ()
          | `Fresh v ->
              g.parents.(v) <- (u, Some e);
              g.succs.(v) <- [];
              added := (e, v) :: !added;
              g.edges <- g.edges + 1;
              fresh := true;
              on_intern ();
              if g.reduction = `Sleep then g.sleeps.(v) <- z;
              push { node = v; cfg = cfg'; sleep = z }
        end
      in
      let classify_counted cfg' =
        let tag = classify_succ g cfg' in
        (match tag with Dup _ | New_key _ -> g.probes <- g.probes + 1 | New_parts -> ());
        tag
      in
      (match tags with
      | Some tg ->
          List.iteri
            (fun i ((_, _, _) as item) ->
              (match tg.(i) with
              | Dup _ | New_key _ -> g.probes <- g.probes + 1
              | New_parts -> ());
              do_event tg.(i) item)
            plan.chosen
      | None ->
          List.iter (fun ((_, cfg', _) as item) -> do_event (classify_counted cfg') item) plan.chosen);
      if first && plan.partial && plan.chosen <> [] && not !fresh then begin
        (* BFS cycle proviso (Bošnački–Holzmann): a partial expansion whose
           successors are all already visited could defer its pruned events
           around a cycle forever (the ignoring problem).  Expand fully; the
           deferred successors are computed here, sequentially — pure,
           deterministic, and rare. *)
        g.proviso_hits <- g.proviso_hits + 1;
        List.iter
          (fun e ->
            let cfg' = C.apply cfg e in
            do_event (classify_counted cfg') (e, cfg', []))
          plan.deferred
      end
      else if first then begin
        g.pruned <- g.pruned + plan.ample_pruned;
        g.sleep_hits <- g.sleep_hits + plan.slept
      end;
      g.succs.(u) <- existing @ List.rev !added;
      Bytes.set g.expanded_flags u '\001'

    let explore_sequential ~filter ~max_configs g root_cfg =
      let queue = Queue.create () in
      Queue.push { node = 0; cfg = root_cfg; sleep = [] } queue;
      let nop () = () in
      while not (Queue.is_empty queue) do
        let { node = u; cfg; sleep } = Queue.pop queue in
        let plan = compute_plan ~filter ~reduction:g.reduction cfg sleep in
        expand g ~max_configs
          ~push:(fun ent -> Queue.push ent queue)
          ~on_intern:nop ~on_dup:nop ~on_trunc:nop u ~cfg plan
      done

    (* Frontier-batched BFS: the probe phase — plan computation ([C.events] +
       [C.apply] + ample selection) plus read-only successor classification
       against the sharded store — runs on a domain pool, one chunk of the
       frontier at a time; the resulting (plan, tags) pairs are then merged
       {e sequentially, in frontier order} by {!expand}.  The sequential BFS
       pops its FIFO queue in exactly that order and appends children (and
       sleep requeues) behind every already-queued node, so the interleaving
       of [store_add] calls — and with it every graph ID, the [succs]
       ordering, the [parents] witnesses, and the truncation point at
       [max_configs] — is bit-identical to {!explore_sequential}.

       Two throughput refinements, both invisible in the result:

       - waves smaller than [seq_threshold] skip the pool and run the probe
         inline — the probe is read-only either way, so the tags (and hence
         the merge) are identical, but a handful-of-nodes wave no longer
         round-trips the pool barrier;
       - the pool itself is created lazily, on the first wave big enough to
         use it, so explorations that never cross the threshold (tiny zoo
         graphs, [parity]) spawn no domains at all. *)
    let explore_frontier ?pool_metrics ?wave_hook ~filter ~jobs ~seq_threshold
        ~max_configs g root_cfg =
      let pool = ref None in
      let get_pool () =
        match !pool with
        | Some p -> p
        | None ->
            let p = Parallel.Pool.create ?metrics:pool_metrics ~jobs () in
            pool := Some p;
            p
      in
      Fun.protect
        ~finally:(fun () ->
          match !pool with Some p -> Parallel.Pool.shutdown p | None -> ())
        (fun () ->
          let frontier = ref [ { node = 0; cfg = root_cfg; sleep = [] } ] in
          let wave = ref 0 in
          while !frontier <> [] do
            let w0 = if Option.is_none wave_hook then 0.0 else Obs.Clock.now () in
            let batch = Array.of_list !frontier in
            let nb = Array.length batch in
            (* Probe phase: pure per entry, store read-only. *)
            let task ent =
              let plan = compute_plan ~filter ~reduction:g.reduction ent.cfg ent.sleep in
              let tags =
                Array.of_list
                  (List.map (fun (_, cfg', _) -> classify_succ g cfg') plan.chosen)
              in
              (plan, tags)
            in
            let plans =
              if jobs = 1 || nb < seq_threshold then Array.map task batch
              else
                Parallel.Pool.map
                  ~chunk:(max 1 (1 + ((nb - 1) / (jobs * 8))))
                  (get_pool ()) task batch
            in
            (* Merge phase: sequential, frontier order; the only writer. *)
            let next = ref [] in
            let interned = ref 0 in
            let dups = ref 0 in
            let truncated = ref 0 in
            Array.iteri
              (fun i ent ->
                let plan, tags = plans.(i) in
                expand g ~max_configs
                  ~push:(fun e -> next := e :: !next)
                  ~on_intern:(fun () -> incr interned)
                  ~on_dup:(fun () -> incr dups)
                  ~on_trunc:(fun () -> incr truncated)
                  ~tags ent.node ~cfg:ent.cfg plan)
              batch;
            (match wave_hook with
            | None -> ()
            | Some hook ->
                hook ~wave:!wave ~frontier:nb ~interned:!interned
                  ~dups:!dups ~truncated:!truncated
                  ~seconds:(Obs.Clock.elapsed w0));
            incr wave;
            frontier := List.rev !next
          done)

    let explore ?(filter = fun _ -> true) ?(jobs = 1) ?(obs = Obs.disabled)
        ?(reduction = `None) ?(shards = 64) ?(seq_threshold = 128) ~max_configs
        root_cfg =
      if max_configs < 1 then invalid_arg "Explore.explore: max_configs must be >= 1";
      if jobs < 1 then invalid_arg "Explore.explore: jobs must be >= 1";
      if shards < 1 then invalid_arg "Explore.explore: shards must be >= 1";
      if seq_threshold < 0 then
        invalid_arg "Explore.explore: seq_threshold must be >= 0";
      let g = make_graph ~reduction ~shards in
      let root_key = C.Packed.pack g.store.pstore root_cfg in
      ensure_capacity g 1;
      let root_id = store_add g.store ~hash:(C.Packed.hash root_key) root_key in
      assert (root_id = 0);
      if not (Obs.enabled obs) then begin
        if jobs = 1 then explore_sequential ~filter ~max_configs g root_cfg
        else explore_frontier ~filter ~jobs ~seq_threshold ~max_configs g root_cfg
      end
      else begin
        (* Instrumented exploration always takes the frontier path — even at
           [jobs:1] — so the per-wave records exist at every jobs level and,
           because the frontier explorer is bit-identical to the sequential
           one, every structural metric (waves, configs, edges, dedup hits,
           truncation) is deterministic across jobs values. *)
        let m = obs.Obs.metrics in
        let c_waves = Obs.Metrics.counter m "explore.waves" in
        let c_configs = Obs.Metrics.counter m "explore.configs" in
        let c_edges = Obs.Metrics.counter m "explore.edges" in
        let c_dups = Obs.Metrics.counter m "explore.dedup_hits" in
        let c_trunc = Obs.Metrics.counter m "explore.truncated" in
        let h_wave =
          Obs.Metrics.histogram m "explore.wave_size" ~lo:0.0 ~hi:100_000.0 ~bins:50
        in
        let t_explore = Obs.Metrics.timer m "explore.time" in
        let rate = Obs.Metrics.fgauge m "explore.configs_per_sec" in
        let trace = obs.Obs.trace in
        let wave_hook ~wave ~frontier ~interned ~dups ~truncated ~seconds =
          Obs.Metrics.incr c_waves 1;
          Obs.Metrics.incr c_configs interned;
          Obs.Metrics.incr c_dups dups;
          Obs.Metrics.incr c_trunc truncated;
          Obs.Metrics.observe h_wave (float_of_int frontier);
          Obs.Span.event trace "explore.wave"
            ~attrs:
              [
                ("wave", Flp_json.Int wave);
                ("frontier", Flp_json.Int frontier);
                ("interned", Flp_json.Int interned);
                ("dedup_hits", Flp_json.Int dups);
                ("truncated", Flp_json.Int truncated);
                ("dur_s", Flp_json.Float seconds);
              ]
        in
        Obs.Metrics.incr c_configs 1;
        (* the root, interned before the first wave *)
        let t0 = Obs.Clock.now () in
        Obs.Span.span trace "explore"
          ~attrs:
            [
              ("jobs", Flp_json.Int jobs);
              ("max_configs", Flp_json.Int max_configs);
              ("reduction", Flp_json.Str (reduction_name reduction));
            ]
          (fun () ->
            explore_frontier ~pool_metrics:m ~wave_hook ~filter ~jobs ~seq_threshold
              ~max_configs g root_cfg);
        let dur = Obs.Clock.elapsed t0 in
        Obs.Metrics.add_seconds t_explore dur;
        Obs.Metrics.incr c_edges g.edges;
        (* Sharded-intern and packed-codec structurals — all deterministic
           across jobs values, like every other structural metric here. *)
        Obs.Metrics.incr (Obs.Metrics.counter m "explore.shard.probes") g.probes;
        Obs.Metrics.gauge_set (Obs.Metrics.gauge m "explore.shard.count") g.store.shard_count;
        Obs.Metrics.gauge_set
          (Obs.Metrics.gauge m "explore.shard.max_load")
          (Array.fold_left (fun acc t -> max acc (KTbl.length t)) 0 g.store.shards);
        Obs.Metrics.gauge_set (Obs.Metrics.gauge m "explore.packed.bytes") g.store.bytes;
        Obs.Metrics.gauge_set
          (Obs.Metrics.gauge m "explore.packed.dict_states")
          (C.Packed.state_count g.store.pstore);
        Obs.Metrics.gauge_set
          (Obs.Metrics.gauge m "explore.packed.dict_msgs")
          (C.Packed.msg_count g.store.pstore);
        (match reduction with
        | `None -> ()
        | `Persistent | `Sleep ->
            Obs.Metrics.incr (Obs.Metrics.counter m "explore.por.pruned") g.pruned;
            Obs.Metrics.incr (Obs.Metrics.counter m "explore.por.sleep_hits") g.sleep_hits;
            Obs.Metrics.incr (Obs.Metrics.counter m "explore.por.proviso") g.proviso_hits);
        if dur > 0.0 then
          Obs.Metrics.fgauge_set rate (float_of_int g.store.count /. dur)
      end;
      g

    let complete g = g.complete_flag

    let size g = g.store.count

    let root _ = 0

    let config g id =
      if id < 0 || id >= g.store.count then
        invalid_arg "Explore.config: id out of range";
      C.Packed.unpack g.store.pstore g.store.packed.(id)

    let id_of g cfg =
      match C.Packed.pack_ro g.store.pstore cfg with
      | None -> None  (* contains a part no stored config has: not in the graph *)
      | Some key -> store_find g.store ~hash:(C.Packed.hash key) key

    let probe_count g = g.probes

    let packed_bytes g = g.store.bytes

    let succ g id = g.succs.(id)

    let expanded g id = Bytes.get g.expanded_flags id <> '\000'

    let edge_count g = g.edges

    let reduction g = g.reduction

    let pruned_count g = g.pruned

    let sleep_hit_count g = g.sleep_hits

    let proviso_count g = g.proviso_hits

    let path_to g id =
      let rec go acc id =
        match g.parents.(id) with
        | -1, _ -> acc
        | parent, Some e -> go (e :: acc) parent
        | _, None -> acc
      in
      go [] id
  end

  module Valency = struct
    type valence = Univalent of Value.t | Bivalent | Undecided_forever

    let equal_valence a b =
      match (a, b) with
      | Univalent v, Univalent w -> Value.equal v w
      | Bivalent, Bivalent | Undecided_forever, Undecided_forever -> true
      | (Univalent _ | Bivalent | Undecided_forever), _ -> false

    let pp_valence ppf = function
      | Univalent v -> Format.fprintf ppf "%a-valent" Value.pp v
      | Bivalent -> Format.fprintf ppf "bivalent"
      | Undecided_forever -> Format.fprintf ppf "undecided-forever"

    exception Incomplete

    let mask_of_values vs =
      List.fold_left
        (fun acc v -> acc lor (match v with Value.Zero -> 1 | Value.One -> 2))
        0 vs

    let classify g =
      if not (Explore.complete g) then raise Incomplete;
      let n = Explore.size g in
      let masks = Array.make n 0 in
      let preds = Array.make n [] in
      for u = 0 to n - 1 do
        masks.(u) <- mask_of_values (C.decision_values (Explore.config g u));
        List.iter (fun (_, v) -> preds.(v) <- u :: preds.(v)) (Explore.succ g u)
      done;
      let queue = Queue.create () in
      for u = 0 to n - 1 do
        if masks.(u) <> 0 then Queue.push u queue
      done;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        List.iter
          (fun u ->
            let nm = masks.(u) lor masks.(v) in
            if nm <> masks.(u) then begin
              masks.(u) <- nm;
              Queue.push u queue
            end)
          preds.(v)
      done;
      Array.map
        (function
          | 0 -> Undecided_forever
          | 1 -> Univalent Value.Zero
          | 2 -> Univalent Value.One
          | _ -> Bivalent)
        masks

    let of_initial ?(jobs = 1) ?(obs = Obs.disabled) ?(reduction = `None) ~max_configs
        inputs =
      let g = Explore.explore ~jobs ~obs ~reduction ~max_configs (C.initial inputs) in
      (classify g).(0)
  end

  let dot ?valences g =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "digraph flp {\n  rankdir=TB;\n  node [fontsize=9];\n";
    for id = 0 to Explore.size g - 1 do
      let cfg = Explore.config g id in
      let fill =
        match valences with
        | None -> "white"
        | Some v -> (
            match v.(id) with
            | Valency.Univalent Value.Zero -> "palegreen"
            | Valency.Univalent Value.One -> "lightblue"
            | Valency.Bivalent -> "orange"
            | Valency.Undecided_forever -> "lightgrey")
      in
      let shape = if C.decision_values cfg <> [] then "doubleoctagon" else "ellipse" in
      Buffer.add_string buf
        (Printf.sprintf "  c%d [label=\"%d\", style=filled, fillcolor=%s, shape=%s];\n" id
           id fill shape)
    done;
    for id = 0 to Explore.size g - 1 do
      List.iter
        (fun (e, t) ->
          Buffer.add_string buf
            (Printf.sprintf "  c%d -> c%d [label=\"%s\", fontsize=8];\n" id t
               (String.escaped (Format.asprintf "%a" C.pp_event e))))
        (Explore.succ g id)
    done;
    Buffer.add_string buf "}\n";
    Buffer.contents buf

  module Lemma = struct
    type lemma1_report = { trials : int; holds : int; failures : string list }

    (* Build a random schedule from [cfg] restricted to processes satisfying
       [allow], of length at most [len]. *)
    let random_schedule rng cfg ~allow ~len =
      let rec go acc cfg k =
        if k = 0 then (List.rev acc, cfg)
        else begin
          let candidates =
            List.filter (fun (e : C.event) -> allow e.dest) (C.events cfg)
          in
          match candidates with
          | [] -> (List.rev acc, cfg)
          | _ ->
              let e = List.nth candidates (Sim.Rng.int rng (List.length candidates)) in
              go (e :: acc) (C.apply cfg e) (k - 1)
        end
      in
      go [] cfg len

    let try_apply cfg schedule =
      try Some (C.apply_schedule cfg schedule) with C.Not_applicable _ -> None

    let check_lemma1 ~seed ~trials ~depth inputs =
      let rng = Sim.Rng.create seed in
      let holds = ref 0 in
      let failures = ref [] in
      for trial = 1 to trials do
        (* Walk to a random reachable configuration. *)
        let steps = Sim.Rng.int rng (depth + 1) in
        let _, c = random_schedule rng (C.initial inputs) ~allow:(fun _ -> true) ~len:steps in
        (* Random partition of the processes into two disjoint camps. *)
        let camp = Array.init P.n (fun _ -> Sim.Rng.bool rng) in
        let s1, c1 = random_schedule rng c ~allow:(fun p -> camp.(p)) ~len:(1 + Sim.Rng.int rng depth) in
        let s2, c2 = random_schedule rng c ~allow:(fun p -> not camp.(p)) ~len:(1 + Sim.Rng.int rng depth) in
        let fail reason =
          failures :=
            Printf.sprintf "trial %d: %s (|s1|=%d, |s2|=%d)" trial reason (List.length s1)
              (List.length s2)
            :: !failures
        in
        match (try_apply c1 s2, try_apply c2 s1) with
        | Some c12, Some c21 ->
            if C.equal c12 c21 then incr holds
            else fail "application orders disagree on the final configuration"
        | None, _ -> fail "s2 not applicable after s1"
        | _, None -> fail "s1 not applicable after s2"
      done;
      { trials; holds = !holds; failures = List.rev !failures }

    type initial_class = { inputs : Value.t array; valence : Valency.valence option }

    let all_inputs () =
      List.init (1 lsl P.n) (fun bits ->
          Array.init P.n (fun pid ->
              if bits land (1 lsl pid) <> 0 then Value.One else Value.Zero))

    let check_lemma2 ?(jobs = 1) ?(obs = Obs.disabled) ?(reduction = `None) ~max_configs
        () =
      List.map
        (fun inputs ->
          let valence =
            try Some (Valency.of_initial ~jobs ~obs ~reduction ~max_configs inputs)
            with Valency.Incomplete -> None
          in
          { inputs; valence })
        (all_inputs ())

    let bivalent_initials ?(jobs = 1) ?(obs = Obs.disabled) ?(reduction = `None)
        ~max_configs () =
      check_lemma2 ~jobs ~obs ~reduction ~max_configs ()
      |> List.filter_map (fun cls ->
             match cls.valence with Some Valency.Bivalent -> Some cls.inputs | _ -> None)

    let adjacent_opposite_pairs ?(jobs = 1) ?(obs = Obs.disabled) ?(reduction = `None)
        ~max_configs () =
      let classes = check_lemma2 ~jobs ~obs ~reduction ~max_configs () in
      let valence_of inputs =
        List.find_map
          (fun cls -> if cls.inputs = inputs then cls.valence else None)
          classes
      in
      List.concat_map
        (fun cls ->
          match cls.valence with
          | Some (Valency.Univalent v) ->
              List.filter_map
                (fun pid ->
                  (* flip one input; consider each unordered pair once *)
                  if Value.equal cls.inputs.(pid) Value.Zero then begin
                    let flipped = Array.copy cls.inputs in
                    flipped.(pid) <- Value.One;
                    match valence_of flipped with
                    | Some (Valency.Univalent w) when not (Value.equal v w) ->
                        Some (cls.inputs, flipped, pid)
                    | _ -> None
                  end
                  else None)
                (List.init P.n Fun.id)
          | Some (Valency.Bivalent | Valency.Undecided_forever) | None -> [])
        classes

    type lemma3_stats = {
      bivalent_configs : int;
      pairs_checked : int;
      pairs_holding : int;
      counterexamples : (int * C.event) list;
    }

    let e_successor g v e =
      List.find_map
        (fun (ev, t) -> if C.event_equal ev e then Some t else None)
        (Explore.succ g v)

    (* Does D = e(reachable-from-[start]-without-[e]) contain a bivalent
       configuration?  BFS with early exit. *)
    let d_contains_bivalent g valences start e =
      let seen = Array.make (Explore.size g) false in
      let queue = Queue.create () in
      seen.(start) <- true;
      Queue.push start queue;
      let found = ref false in
      while (not !found) && not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        (match e_successor g v e with
        | Some t when Valency.equal_valence valences.(t) Valency.Bivalent -> found := true
        | Some _ | None -> ());
        if not !found then
          List.iter
            (fun (ev, t) ->
              if (not (C.event_equal ev e)) && not seen.(t) then begin
                seen.(t) <- true;
                Queue.push t queue
              end)
            (Explore.succ g v)
      done;
      !found

    let check_lemma3 ?(max_pairs = max_int) ?(jobs = 1) ?(obs = Obs.disabled) ~max_configs
        inputs =
      let g = Explore.explore ~jobs ~obs ~max_configs (C.initial inputs) in
      let valences = Valency.classify g in
      let bivalent_ids =
        List.filter
          (fun id -> Valency.equal_valence valences.(id) Valency.Bivalent)
          (List.init (Explore.size g) (fun i -> i))
      in
      let checked = ref 0 in
      let holding = ref 0 in
      let counterexamples = ref [] in
      (try
         List.iter
           (fun id ->
             List.iter
               (fun (e, _) ->
                 if !checked >= max_pairs then raise Exit;
                 incr checked;
                 if d_contains_bivalent g valences id e then incr holding
                 else if List.length !counterexamples < 16 then
                   counterexamples := (id, e) :: !counterexamples)
               (Explore.succ g id))
           bivalent_ids
       with Exit -> ());
      {
        bivalent_configs = List.length bivalent_ids;
        pairs_checked = !checked;
        pairs_holding = !holding;
        counterexamples = List.rev !counterexamples;
      }

    type lemma3_cases = {
      failing_pairs : int;
      with_neighbor_witness : int;
      case1 : int;
      case2 : int;
      uniform_d : int;
    }

    (* Members of the avoid-[e] region from [start]. *)
    let region g start e =
      let seen = Array.make (Explore.size g) false in
      let queue = Queue.create () in
      seen.(start) <- true;
      Queue.push start queue;
      let members = ref [] in
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        members := v :: !members;
        List.iter
          (fun (ev, t) ->
            if (not (C.event_equal ev e)) && not seen.(t) then begin
              seen.(t) <- true;
              Queue.push t queue
            end)
          (Explore.succ g v)
      done;
      !members

    let lemma3_case_analysis ?(max_pairs = max_int) ?(jobs = 1) ?(obs = Obs.disabled)
        ~max_configs inputs =
      let g = Explore.explore ~jobs ~obs ~max_configs (C.initial inputs) in
      let valences = Valency.classify g in
      let bivalent_ids =
        List.filter
          (fun id -> Valency.equal_valence valences.(id) Valency.Bivalent)
          (List.init (Explore.size g) (fun i -> i))
      in
      let checked = ref 0 in
      let failing = ref 0 in
      let witnessed = ref 0 in
      let case1 = ref 0 in
      let case2 = ref 0 in
      let uniform = ref 0 in
      let e_valence v e =
        Option.map (fun t -> valences.(t)) (e_successor g v e)
      in
      (try
         List.iter
           (fun id ->
             List.iter
               (fun (e, _) ->
                 if !checked >= max_pairs then raise Exit;
                 incr checked;
                 if not (d_contains_bivalent g valences id e) then begin
                   incr failing;
                   let members = region g id e in
                   (* the proof's pivot: one step inside the region flips the
                      e-successor's univalence *)
                   let witness =
                     List.find_map
                       (fun u ->
                         match e_valence u e with
                         | Some (Valency.Univalent a) ->
                             List.find_map
                               (fun ((e' : C.event), t) ->
                                 if C.event_equal e' e then None
                                 else
                                   match e_valence t e with
                                   | Some (Valency.Univalent b)
                                     when not (Value.equal a b) ->
                                       Some e'.dest
                                   | Some _ | None -> None)
                               (Explore.succ g u)
                         | Some _ | None -> None)
                       members
                   in
                   match witness with
                   | Some p' ->
                       incr witnessed;
                       if p' = e.dest then incr case2 else incr case1
                   | None ->
                       (* no pivot: is all of D univalent for one value? *)
                       let values =
                         List.filter_map
                           (fun u ->
                             match e_valence u e with
                             | Some (Valency.Univalent v) -> Some v
                             | Some _ | None -> None)
                           members
                         |> List.sort_uniq Value.compare
                       in
                       if List.length values <= 1 then incr uniform
                 end)
               (Explore.succ g id))
           bivalent_ids
       with Exit -> ());
      {
        failing_pairs = !failing;
        with_neighbor_witness = !witnessed;
        case1 = !case1;
        case2 = !case2;
        uniform_d = !uniform;
      }

    type correctness = {
      no_conflicting_decisions : bool;
      conflict_witness : (Value.t array * C.event list) option;
      reachable_decision_values : Value.t list;
      exhaustive : bool;
    }

    let check_partial_correctness ?(jobs = 1) ?(obs = Obs.disabled) ?(reduction = `None)
        ~max_configs () =
      let conflict = ref None in
      let values = ref [] in
      let exhaustive = ref true in
      List.iter
        (fun inputs ->
          let g = Explore.explore ~jobs ~obs ~reduction ~max_configs (C.initial inputs) in
          if not (Explore.complete g) then exhaustive := false;
          for id = 0 to Explore.size g - 1 do
            let dv = C.decision_values (Explore.config g id) in
            values := dv @ !values;
            if List.length dv > 1 && !conflict = None then
              conflict := Some (inputs, Explore.path_to g id)
          done)
        (all_inputs ());
      {
        no_conflicting_decisions = !conflict = None;
        conflict_witness = !conflict;
        reachable_decision_values = List.sort_uniq Value.compare !values;
        exhaustive = !exhaustive;
      }

    let find_blocking_run ?(jobs = 1) ?(obs = Obs.disabled) ~max_configs ~faulty inputs =
      let g =
        Explore.explore
          ~filter:(fun (e : C.event) -> e.dest <> faulty)
          ~jobs ~obs ~max_configs (C.initial inputs)
      in
      let n = Explore.size g in
      (* Backward reachability from decision-bearing configurations. *)
      let preds = Array.make n [] in
      for u = 0 to n - 1 do
        List.iter (fun (_, v) -> preds.(v) <- u :: preds.(v)) (Explore.succ g u)
      done;
      let can_decide = Array.make n false in
      let queue = Queue.create () in
      for u = 0 to n - 1 do
        if C.decision_values (Explore.config g u) <> [] then begin
          can_decide.(u) <- true;
          Queue.push u queue
        end
      done;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        List.iter
          (fun u ->
            if not can_decide.(u) then begin
              can_decide.(u) <- true;
              Queue.push u queue
            end)
          preds.(v)
      done;
      let witness = ref None in
      (try
         for u = 0 to n - 1 do
           (* Frontier nodes of a truncated graph have unknown futures; only
              expanded dead nodes are sound witnesses. *)
           if (not can_decide.(u)) && Explore.expanded g u then begin
             witness := Some (Explore.path_to g u);
             raise Exit
           end
         done
       with Exit -> ());
      match !witness with
      | Some schedule -> `Blocking_witness schedule
      | None -> `Decision_always_reachable

    (* Iterative Tarjan over the explored graph restricted to nodes
       satisfying [keep] and edges satisfying [keep] at both ends. *)
    let sccs_of_subgraph g keep =
      let n = Explore.size g in
      let index = Array.make n (-1) in
      let lowlink = Array.make n 0 in
      let on_stack = Array.make n false in
      let stack = ref [] in
      let counter = ref 0 in
      let components = ref [] in
      let succs v =
        List.filter_map
          (fun (_, t) -> if keep t then Some t else None)
          (Explore.succ g v)
      in
      let visit root =
        let frames = ref [ (root, ref (succs root)) ] in
        index.(root) <- !counter;
        lowlink.(root) <- !counter;
        incr counter;
        stack := root :: !stack;
        on_stack.(root) <- true;
        while !frames <> [] do
          match !frames with
          | [] -> ()
          | (v, cursor) :: rest -> (
              match !cursor with
              | w :: more ->
                  cursor := more;
                  if index.(w) = -1 then begin
                    index.(w) <- !counter;
                    lowlink.(w) <- !counter;
                    incr counter;
                    stack := w :: !stack;
                    on_stack.(w) <- true;
                    frames := (w, ref (succs w)) :: !frames
                  end
                  else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
              | [] ->
                  frames := rest;
                  (match rest with
                  | (parent, _) :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
                  | [] -> ());
                  if lowlink.(v) = index.(v) then begin
                    let comp = ref [] in
                    let break = ref false in
                    while not !break do
                      match !stack with
                      | [] -> break := true
                      | w :: tl ->
                          stack := tl;
                          on_stack.(w) <- false;
                          comp := w :: !comp;
                          if w = v then break := true
                    done;
                    components := !comp :: !components
                  end)
        done
      in
      for v = 0 to n - 1 do
        if keep v && index.(v) = -1 then visit v
      done;
      !components

    let find_fair_nondeciding_cycle ?(jobs = 1) ?(obs = Obs.disabled) ~max_configs ~faulty
        inputs =
      let filter =
        match faulty with
        | Some p -> fun (e : C.event) -> e.dest <> p
        | None -> fun _ -> true
      in
      let g = Explore.explore ~filter ~jobs ~obs ~max_configs (C.initial inputs) in
      let n = Explore.size g in
      let undecided =
        Array.init n (fun id -> C.decision_values (Explore.config g id) = [])
      in
      (* Only fully expanded nodes are sound cycle members. *)
      let keep id = undecided.(id) && Explore.expanded g id in
      let live pid = match faulty with Some p -> pid <> p | None -> true in
      let comps = sccs_of_subgraph g keep in
      let in_comp = Array.make n false in
      let is_fair comp =
        List.iter (fun v -> in_comp.(v) <- true) comp;
        let internal_edges =
          List.concat_map
            (fun u ->
              List.filter_map
                (fun (e, t) -> if in_comp.(t) then Some e else None)
                (Explore.succ g u))
            comp
        in
        let nontrivial =
          match comp with [ v ] -> List.exists (fun (_, t) -> t = v) (Explore.succ g v) | _ -> true
        in
        let every_live_steps =
          List.for_all
            (fun pid ->
              (not (live pid))
              || List.exists (fun (e : C.event) -> e.dest = pid) internal_edges)
            (List.init P.n Fun.id)
        in
        let pendings_delivered =
          List.for_all
            (fun u ->
              List.for_all
                (fun (dest, msg, _) ->
                  (not (live dest))
                  || List.exists
                       (fun e -> C.event_equal e (C.deliver dest msg))
                       internal_edges)
                (C.pending (Explore.config g u)))
            comp
        in
        let ok = nontrivial && every_live_steps && pendings_delivered in
        List.iter (fun v -> in_comp.(v) <- false) comp;
        ok
      in
      match List.find_opt is_fair comps with
      | Some comp ->
          let entry = List.fold_left min max_int comp in
          `Fair_cycle (Explore.path_to g entry)
      | None -> `No_fair_cycle

    type verdict = {
      partially_correct : bool;
      correctness_detail : correctness;
      has_bivalent_initial : bool;
      blocking : (int * Value.t array * C.event list) option;
      fair_cycle : (int option * Value.t array * C.event list) option;
    }

    let classify ?(jobs = 1) ?(obs = Obs.disabled) ~max_configs () =
      let detail = check_partial_correctness ~jobs ~obs ~max_configs () in
      let partially_correct =
        detail.no_conflicting_decisions
        && List.length detail.reachable_decision_values = 2
      in
      let has_bivalent_initial = bivalent_initials ~jobs ~obs ~max_configs () <> [] in
      let blocking = ref None in
      (try
         List.iter
           (fun inputs ->
             for faulty = 0 to P.n - 1 do
               match find_blocking_run ~jobs ~obs ~max_configs ~faulty inputs with
               | `Blocking_witness schedule ->
                   blocking := Some (faulty, inputs, schedule);
                   raise Exit
               | `Decision_always_reachable -> ()
             done)
           (all_inputs ())
       with Exit -> ());
      let fair_cycle = ref None in
      (try
         List.iter
           (fun inputs ->
             List.iter
               (fun faulty ->
                 match find_fair_nondeciding_cycle ~jobs ~obs ~max_configs ~faulty inputs with
                 | `Fair_cycle schedule ->
                     fair_cycle := Some (faulty, inputs, schedule);
                     raise Exit
                 | `No_fair_cycle -> ())
               (None :: List.init P.n (fun p -> Some p)))
           (all_inputs ())
       with Exit -> ());
      {
        partially_correct;
        correctness_detail = detail;
        has_bivalent_initial;
        blocking = !blocking;
        fair_cycle = !fair_cycle;
      }
  end

  module Adversary = struct
    type stage = { process : int; forced_event : C.event; schedule : C.event list }

    type outcome = Completed | Stuck of { stage : int; reason : string }

    type run = { stages : stage list; steps : int; outcome : outcome }

    (* Shortest schedule sigma from [start] avoiding [e] such that
       [e (sigma start)] is bivalent, returned as the event path; [None] when
       no node of the avoid-e region has a bivalent e-successor. *)
    let find_stage_schedule g valences start e =
      let n = Explore.size g in
      let parent = Array.make n (-2) in
      (* -2 unseen, -1 root *)
      let parent_event = Array.make n None in
      let queue = Queue.create () in
      parent.(start) <- -1;
      Queue.push start queue;
      let target = ref None in
      while !target = None && not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        (match Lemma.e_successor g v e with
        | Some t when Valency.equal_valence valences.(t) Valency.Bivalent ->
            target := Some v
        | Some _ | None -> ());
        if !target = None then
          List.iter
            (fun (ev, t) ->
              if (not (C.event_equal ev e)) && parent.(t) = -2 then begin
                parent.(t) <- v;
                parent_event.(t) <- Some ev;
                Queue.push t queue
              end)
            (Explore.succ g v)
      done;
      match !target with
      | None -> None
      | Some v ->
          let rec build acc v =
            if parent.(v) = -1 then acc
            else
              match parent_event.(v) with
              | Some ev -> build (ev :: acc) parent.(v)
              | None -> acc
          in
          Some (build [] v)

    (* Remove the first pending entry matching a delivery event. *)
    let rec remove_pending e = function
      | [] -> invalid_arg "Adversary: delivered message not in pending list"
      | (dest, msg) :: rest ->
          if
            dest = (e : C.event).dest
            && match e.msg with Some m -> P.compare_msg m msg = 0 | None -> false
          then rest
          else (dest, msg) :: remove_pending e rest

    let run ?(jobs = 1) ?(obs = Obs.disabled) ~max_configs ~stages inputs =
      let trace = obs.Obs.trace in
      let c_stages = Obs.Metrics.counter obs.Obs.metrics "adversary.stages" in
      let c_steps = Obs.Metrics.counter obs.Obs.metrics "adversary.steps" in
      let t_stage = Obs.Metrics.timer obs.Obs.metrics "adversary.stage_time" in
      let g = Explore.explore ~jobs ~obs ~max_configs (C.initial inputs) in
      let valences = Valency.classify g in
      if not (Valency.equal_valence valences.(0) Valency.Bivalent) then
        invalid_arg "Adversary.run: initial configuration is not bivalent";
      let current_id = ref 0 in
      let current_cfg = ref (Explore.config g 0) in
      let queue = ref (List.init P.n (fun i -> i)) in
      let pending = ref [] in
      let steps = ref 0 in
      let done_stages = ref [] in
      let outcome = ref Completed in
      (try
         for stage_no = 1 to stages do
           Obs.Metrics.time t_stage (fun () ->
               let p, rest =
                 match !queue with [] -> assert false | p :: rest -> (p, rest)
               in
               let forced =
                 match List.find_opt (fun (dest, _) -> dest = p) !pending with
                 | Some (_, msg) -> C.deliver p msg
                 | None -> C.null_event p
               in
               match find_stage_schedule g valences !current_id forced with
               | None ->
                   outcome :=
                     Stuck
                       {
                         stage = stage_no;
                         reason =
                           Format.asprintf
                             "no schedule ending with %a reaches a bivalent configuration \
                              (Lemma 3 hypothesis fails: protocol is not totally correct \
                              here)"
                             C.pp_event forced;
                       };
                   if Obs.Span.enabled trace then
                     Obs.Span.event trace "adversary.stuck"
                       ~attrs:
                         [
                           ("stage", Flp_json.Int stage_no);
                           ("process", Flp_json.Int p);
                           ("forced", Flp_json.Str (Format.asprintf "%a" C.pp_event forced));
                         ];
                   raise Exit
               | Some prefix ->
                   let schedule = prefix @ [ forced ] in
                   List.iter
                     (fun (e : C.event) ->
                       let cfg', sends = C.apply_with_sends !current_cfg e in
                       if e.msg <> None then pending := remove_pending e !pending;
                       pending := !pending @ sends;
                       current_cfg := cfg';
                       incr steps)
                     schedule;
                   (match Explore.id_of g !current_cfg with
                   | Some id -> current_id := id
                   | None -> assert false);
                   assert (Valency.equal_valence valences.(!current_id) Valency.Bivalent);
                   done_stages :=
                     { process = p; forced_event = forced; schedule } :: !done_stages;
                   queue := rest @ [ p ];
                   Obs.Metrics.incr c_stages 1;
                   Obs.Metrics.incr c_steps (List.length schedule);
                   if Obs.Span.enabled trace then
                     Obs.Span.event trace "adversary.stage"
                       ~attrs:
                         [
                           ("stage", Flp_json.Int stage_no);
                           ("process", Flp_json.Int p);
                           ("forced", Flp_json.Str (Format.asprintf "%a" C.pp_event forced));
                           ("schedule_len", Flp_json.Int (List.length schedule));
                           ("bivalent_witness", Flp_json.Int !current_id);
                         ])
         done
       with Exit -> ());
      { stages = List.rev !done_stages; steps = !steps; outcome = !outcome }
  end

  module Causality = struct
    let mask_of c pid =
      if not C.footprints_annotated then -1
      else begin
        let mask = ref 0 in
        for d = 0 to C.n - 1 do
          if C.may_send_to c pid d then mask := !mask lor (1 lsl d)
        done;
        !mask
      end

    let record inputs schedule =
      let r = Causal.Recorder.create ~n:C.n in
      (* Send-order bookkeeping: the buffer is a multiset, so a delivered
         message is matched to the {e earliest} recorded send of an equal
         message to the same destination — the same FIFO convention the
         adversary uses, and deterministic because sends are recorded in
         application order. *)
      let pending = ref [] in
      let take_sid dest msg =
        let rec go acc = function
          | [] -> (-1, List.rev acc)
          | (d, m, sid) :: rest when d = dest && P.compare_msg m msg = 0 ->
              (sid, List.rev_append acc rest)
          | s :: rest -> go (s :: acc) rest
        in
        let sid, rest = go [] !pending in
        pending := rest;
        sid
      in
      let step_no = ref 0 in
      let apply c (ev : C.event) =
        let pid = ev.C.dest in
        let kind =
          match ev.C.msg with
          | None -> Causal.Recorder.Null
          | Some m ->
              (* The model's events carry no sender; provenance comes from
                 the send bookkeeping.  [src] below is recovered from the
                 matched send record. *)
              let sid = take_sid pid m in
              let src = Causal.Recorder.send_src r sid in
              let src = if src < 0 then -1 else (Causal.Recorder.event r src).pid in
              Causal.Recorder.Deliver { src; sid }
        in
        let eid =
          Causal.Recorder.step r ~pid ~time:(float_of_int !step_no) ~kind
            ~may:(mask_of c pid)
        in
        incr step_no;
        let before = (C.decisions c).(pid) in
        let c', sends = C.apply_with_sends c ev in
        List.iter
          (fun (dst, m) ->
            let sid =
              Causal.Recorder.send r ~eid ~dst ~time:(float_of_int !step_no)
            in
            pending := !pending @ [ (dst, m, sid) ])
          sends;
        (match ((C.decisions c').(pid), before) with
        | Some v, None -> Causal.Recorder.decide r ~eid ~value:(Value.to_int v)
        | _ -> ());
        c'
      in
      let _final = List.fold_left apply (C.initial inputs) schedule in
      r
  end
end
