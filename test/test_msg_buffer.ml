module MB = Flp.Msg_buffer.Make (struct
  type t = string

  let compare = String.compare

  let hash = Hashtbl.hash

  let pp = Format.pp_print_string
end)

let test_empty () =
  Alcotest.(check bool) "is_empty" true (MB.is_empty MB.empty);
  Alcotest.(check int) "size" 0 (MB.size MB.empty);
  Alcotest.(check (list (pair int string))) "deliverable" [] (MB.deliverable MB.empty)

let test_send_receive () =
  let b = MB.send MB.empty ~dest:1 "m" in
  Alcotest.(check int) "size 1" 1 (MB.size b);
  Alcotest.(check bool) "mem" true (MB.mem b ~dest:1 "m");
  Alcotest.(check bool) "mem other dest" false (MB.mem b ~dest:2 "m");
  let b = MB.receive b ~dest:1 "m" in
  Alcotest.(check bool) "drained" true (MB.is_empty b)

let test_multiset_counts () =
  let b = MB.send (MB.send MB.empty ~dest:0 "x") ~dest:0 "x" in
  Alcotest.(check int) "count 2" 2 (MB.count b ~dest:0 "x");
  Alcotest.(check int) "size 2" 2 (MB.size b);
  Alcotest.(check int) "one deliverable pair" 1 (List.length (MB.deliverable b));
  let b = MB.receive b ~dest:0 "x" in
  Alcotest.(check int) "count 1 after receive" 1 (MB.count b ~dest:0 "x")

let test_receive_missing () =
  Alcotest.check_raises "not found" Not_found (fun () ->
      ignore (MB.receive MB.empty ~dest:0 "nope"))

let test_receive_exactly_once () =
  let b = MB.send MB.empty ~dest:3 "m" in
  let b = MB.receive b ~dest:3 "m" in
  Alcotest.check_raises "second receive fails" Not_found (fun () ->
      ignore (MB.receive b ~dest:3 "m"))

let test_canonical_order_independence () =
  let sends = [ (1, "b"); (0, "a"); (1, "a"); (0, "a"); (2, "c") ] in
  let apply order = List.fold_left (fun b (d, m) -> MB.send b ~dest:d m) MB.empty order in
  let b1 = apply sends in
  let b2 = apply (List.rev sends) in
  Alcotest.(check bool) "equal" true (MB.equal b1 b2);
  Alcotest.(check int) "compare" 0 (MB.compare b1 b2);
  Alcotest.(check int) "hash" (MB.hash b1) (MB.hash b2)

let test_deliverable_sorted () =
  let b =
    List.fold_left
      (fun b (d, m) -> MB.send b ~dest:d m)
      MB.empty
      [ (2, "z"); (0, "a"); (1, "m"); (0, "b") ]
  in
  Alcotest.(check (list (pair int string)))
    "canonical order"
    [ (0, "a"); (0, "b"); (1, "m"); (2, "z") ]
    (MB.deliverable b)

let test_for_dest () =
  let b =
    List.fold_left
      (fun b (d, m) -> MB.send b ~dest:d m)
      MB.empty
      [ (0, "a"); (1, "x"); (0, "b") ]
  in
  Alcotest.(check (list string)) "dest 0" [ "a"; "b" ] (MB.for_dest b 0);
  Alcotest.(check (list string)) "dest 2" [] (MB.for_dest b 2)

let test_to_list () =
  let b = MB.send (MB.send (MB.send MB.empty ~dest:0 "a") ~dest:0 "a") ~dest:1 "b" in
  Alcotest.(check bool) "with multiplicity" true
    (MB.to_list b = [ (0, "a", 2); (1, "b", 1) ])

let ops_gen =
  QCheck.Gen.(list_size (1 -- 30) (pair (int_bound 3) (oneofl [ "a"; "b"; "c" ])))

let arbitrary_ops = QCheck.make ops_gen

let prop_size_is_sum_of_counts =
  QCheck.Test.make ~name:"size = sum of multiplicities" ~count:300 arbitrary_ops (fun ops ->
      let b = List.fold_left (fun b (d, m) -> MB.send b ~dest:d m) MB.empty ops in
      MB.size b = List.fold_left (fun a (_, _, c) -> a + c) 0 (MB.to_list b)
      && MB.size b = List.length ops)

let prop_send_receive_roundtrip =
  QCheck.Test.make ~name:"send then receive restores the buffer" ~count:300
    QCheck.(pair arbitrary_ops (pair (int_bound 3) (oneofl [ "a"; "b"; "c" ])))
    (fun (ops, (d, m)) ->
      let b = List.fold_left (fun b (d, m) -> MB.send b ~dest:d m) MB.empty ops in
      MB.equal b (MB.receive (MB.send b ~dest:d m) ~dest:d m))

let prop_persistence =
  QCheck.Test.make ~name:"operations do not mutate older versions" ~count:200 arbitrary_ops
    (fun ops ->
      let b = List.fold_left (fun b (d, m) -> MB.send b ~dest:d m) MB.empty ops in
      let snapshot = MB.to_list b in
      let _ = MB.send b ~dest:0 "mutant" in
      (match MB.deliverable b with
      | (d, m) :: _ -> ignore (MB.receive b ~dest:d m)
      | [] -> ());
      MB.to_list b = snapshot)

let () =
  Alcotest.run "msg_buffer"
    [
      ( "msg_buffer",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "send/receive" `Quick test_send_receive;
          Alcotest.test_case "multiset counts" `Quick test_multiset_counts;
          Alcotest.test_case "receive missing" `Quick test_receive_missing;
          Alcotest.test_case "exactly once" `Quick test_receive_exactly_once;
          Alcotest.test_case "canonical order independence" `Quick
            test_canonical_order_independence;
          Alcotest.test_case "deliverable sorted" `Quick test_deliverable_sorted;
          Alcotest.test_case "for_dest" `Quick test_for_dest;
          Alcotest.test_case "to_list" `Quick test_to_list;
          QCheck_alcotest.to_alcotest prop_size_is_sum_of_counts;
          QCheck_alcotest.to_alcotest prop_send_receive_roundtrip;
          QCheck_alcotest.to_alcotest prop_persistence;
        ] );
    ]
