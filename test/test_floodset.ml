module FS (K : sig
  val rounds : int
end) =
  Sim.Sync.Make (Protocols.Floodset.Make (K))

module FS3 = FS (struct
  let rounds = 3
end)

module FS1 = FS (struct
  let rounds = 1
end)

let cfg ?(inputs = fun i -> i land 1) n seed =
  Sim.Sync.default_cfg ~n ~inputs:(Array.init n inputs) ~seed

let test_decides_in_f_plus_1_rounds () =
  let r = FS3.run (cfg 5 1) in
  Alcotest.(check int) "exactly f+1 rounds" 3 r.rounds;
  Array.iter (fun dr -> Alcotest.(check int) "decision round" 3 dr) r.decision_rounds

let test_decides_min () =
  let r = FS3.run (cfg ~inputs:(fun i -> if i = 4 then 0 else 1) 5 2) in
  Array.iter (fun d -> Alcotest.(check (option int)) "min value" (Some 0) d) r.decisions

let test_unanimous () =
  let r = FS3.run (cfg ~inputs:(fun _ -> 1) 5 3) in
  Array.iter (fun d -> Alcotest.(check (option int)) "validity" (Some 1) d) r.decisions

let test_agreement_random_adversarial_crashes () =
  (* f = 2 crashes placed adversarially (random rounds, partial broadcasts):
     3 rounds always suffice for agreement *)
  let rng = Sim.Rng.create 7 in
  for seed = 1 to 200 do
    let n = 5 in
    let crashes = Workload.Scenario.random_sync_crashes rng ~n ~f:2 ~max_round:3 in
    let c = { (cfg n seed) with crashes } in
    let r = FS3.run c in
    Alcotest.(check bool) "agreement" true (Sim.Sync.agreement_ok r);
    (* every process alive at the end decided *)
    Array.iteri
      (fun pid d ->
        if crashes.(pid) = None then
          Alcotest.(check bool) "live process decided" true (d <> None))
      r.decisions
  done

let test_one_round_insufficient_with_crash () =
  (* with f = 1 actual crash but only 1 round, a partial broadcast can break
     agreement: search a small space for a witness *)
  let broken = ref false in
  for cut = 0 to 4 do
    for seed = 1 to 5 do
      let n = 5 in
      let inputs = Array.init n (fun i -> if i = 0 then 0 else 1) in
      let crashes = Array.make n None in
      crashes.(0) <- Some { Sim.Sync.round = 1; sends_before_crash = cut };
      let c = { (Sim.Sync.default_cfg ~n ~inputs ~seed) with crashes } in
      let r = FS1.run c in
      if not (Sim.Sync.agreement_ok r) then broken := true
    done
  done;
  Alcotest.(check bool) "1 round breaks under a crash" true !broken

let test_one_round_sufficient_without_crash () =
  let r = FS1.run (cfg 5 9) in
  Alcotest.(check bool) "agreement" true (Sim.Sync.agreement_ok r);
  Alcotest.(check int) "one round" 1 r.rounds

let test_message_complexity () =
  (* n(n-1) messages per round *)
  let n = 6 in
  let module FS4 = FS (struct
    let rounds = 4
  end) in
  let r = FS4.run (cfg n 10) in
  Alcotest.(check int) "4 rounds of n(n-1)" (4 * n * (n - 1)) r.sent

let () =
  Alcotest.run "floodset"
    [
      ( "floodset",
        [
          Alcotest.test_case "f+1 rounds" `Quick test_decides_in_f_plus_1_rounds;
          Alcotest.test_case "decides min" `Quick test_decides_min;
          Alcotest.test_case "unanimous validity" `Quick test_unanimous;
          Alcotest.test_case "agreement under adversarial crashes" `Slow
            test_agreement_random_adversarial_crashes;
          Alcotest.test_case "1 round breaks with crash" `Quick
            test_one_round_insufficient_with_crash;
          Alcotest.test_case "1 round fine without crash" `Quick
            test_one_round_sufficient_without_crash;
          Alcotest.test_case "message complexity" `Quick test_message_complexity;
        ] );
    ]
