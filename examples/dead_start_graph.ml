(* FLP §4, Theorem 2: consensus IS possible if faults are confined to
   processes that were dead from the start and a majority is alive.

   This example runs the two-stage protocol with verbose tracing, then
   reconstructs the §4 objects — the stage-1 graph G, its transitive closure
   G+, and the unique initial clique — with the pure graph oracle, showing
   that the asynchronous run decided exactly the clique-majority value.

   Run with:  dune exec examples/dead_start_graph.exe *)

module E = Sim.Engine.Make (Protocols.Dead_start.App)

let n = 7

let dead = [ 5; 6 ]

let () =
  Format.printf "=== Initially dead processes (FLP §4, Theorem 2) ===@.@.";
  let l = (n + 2) / 2 in
  Format.printf
    "n = %d processes, L = ceil((n+1)/2) = %d; processes %s are dead from the start \
     (%d alive >= L, so the protocol must decide).@.@."
    n l
    (String.concat ", " (List.map string_of_int dead))
    (n - List.length dead);
  let inputs = Array.init n (fun i -> i land 1) in
  Format.printf "inputs: %s@.@."
    (String.concat "" (Array.to_list (Array.map string_of_int inputs)));
  let cfg = Sim.Engine.default_cfg ~n ~inputs ~seed:7 in
  let cfg = { cfg with crash_times = Workload.Scenario.initially_dead n dead } in
  let r = E.run cfg in
  Format.printf "Run: %s, %d messages, simulated time %.2f@."
    (match r.outcome with
    | Sim.Engine.All_decided -> "all live processes decided"
    | Sim.Engine.Quiescent -> "blocked"
    | Sim.Engine.Limit_reached -> "limit")
    r.sent r.end_time;
  Array.iteri
    (fun pid d ->
      match d with
      | Some v -> Format.printf "  p%d decided %d (t = %.2f)@." pid v r.decision_times.(pid)
      | None -> Format.printf "  p%d: dead@." pid)
    r.decisions;

  (* Reconstruct the §4 graph theory with the pure oracle on a synthetic
     stage-1 graph of the same shape: each live process hears L-1 others. *)
  Format.printf "@.--- The graph theory behind the decision ---@.";
  let rng = Sim.Rng.create 7 in
  let alive = List.filter (fun i -> not (List.mem i dead)) (List.init n Fun.id) in
  let g = Digraph.create n in
  List.iter
    (fun j ->
      let senders = Array.of_list (List.filter (fun i -> i <> j) alive) in
      Sim.Rng.shuffle rng senders;
      Array.iteri (fun k i -> if k < l - 1 then Digraph.add_edge g i j) senders)
    alive;
  Format.printf "stage-1 graph G (i -> j iff j heard i):@.  %a@." Digraph.pp g;
  let closure = Digraph.transitive_closure g in
  Format.printf "G+ has %d edges (G has %d).@." (Digraph.edge_count closure)
    (Digraph.edge_count g);
  let clique = Protocols.Dead_start.initial_clique_of g in
  Format.printf "initial clique of G+: {%s}  (cardinality %d >= L = %d)@."
    (String.concat ", " (List.map string_of_int clique))
    (List.length clique) l;
  let decision = Protocols.Dead_start.decision_of g inputs in
  Format.printf
    "decision rule (majority of clique members' inputs, ties to 0): %d@." decision;
  Format.printf
    "@.Every process that completes stage 2 computes this same clique from its own \
     ancestor set, which is why they all agree — and why the protocol needs a majority \
     alive: with fewer than L processes, stage 1 never completes and nobody decides \
     (consistent with Theorem 1: the impossibility is dodged only because the faulty \
     processes were never part of the race).@."
