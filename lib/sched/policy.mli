(** The payload-blind policy zoo.

    Each constructor returns a {e fresh} policy instance implementing the
    {!Sim.Scheduler.policy} interface; instances may be stateful and must
    not be shared between runs.  All of these adversaries see timing,
    topology, crash/decision status, and delivery progress — but no message
    contents (they are {!Sim.Scheduler.blind}).  For the content-adaptive
    adversary, see {!Chaser}. *)

val oblivious : unit -> Sim.Scheduler.blind
(** Sampled delay order — bit-identical to the engine's default heap
    behaviour (pinned by the [test_sched] regression suite). *)

val fifo : unit -> Sim.Scheduler.blind
(** Global send order: the network degenerates to one FIFO queue. *)

val lifo : unit -> Sim.Scheduler.blind
(** Newest first: maximal reordering, old messages age indefinitely. *)

val starve : victim:int -> unit -> Sim.Scheduler.blind
(** Withhold everything destined to [victim] while anything else is
    pending.  A policy cannot refuse to schedule, so once only the victim's
    events remain they fire in oblivious order — starvation is exactly "as
    long as the guard (or the queue) allows". *)

val partition :
  block:int list -> rejoin_at:float -> unit -> Sim.Scheduler.blind
(** Withhold messages crossing between [block] and its complement while
    [now < rejoin_at]; after the network heals, pure oblivious order.  The
    backlog of cross-partition traffic then floods in at once. *)

val round_robin_killer : unit -> Sim.Scheduler.blind
(** Starve whichever live undecided process has consumed the most messages
    so far — re-targeting, step by step, the process closest to deciding. *)

val of_spec : Spec.t -> Sim.Scheduler.blind
(** Instantiate a declarative spec (recursively wrapping with
    {!Admissible.wrap} for [Spec.Admissible]).  Returns a fresh stateful
    instance on every call. *)

val factory : Spec.t -> (unit -> Sim.Scheduler.blind) option
(** What [Sim.Engine.cfg.sched] wants: [None] for {!Spec.Oblivious} (the
    engine's heap already implements it, bit-identically and faster), and a
    per-run instance factory for everything else. *)
