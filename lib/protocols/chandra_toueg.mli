(** Chandra–Toueg rotating-coordinator consensus with an eventually strong
    (◇S-style) failure detector — the canonical "more refined model" the FLP
    conclusion calls for: keep the asynchronous network, but add an oracle
    that eventually stops suspecting some correct process.

    The detector is implemented inside the protocol with heartbeats and
    adaptive timeouts: every process broadcasts a heartbeat each tick and
    suspects a peer whose silence exceeds that peer's current threshold;
    each false suspicion (a heartbeat arriving from a suspect) raises the
    threshold, so under any fixed-but-unknown delay bound suspicions are
    eventually accurate.

    Consensus proceeds in asynchronous rounds with coordinator
    [round mod n], tolerating [f < n/2] crashes: estimates carry a timestamp
    of the last adopted proposal; the coordinator of a round collects a
    majority of estimates, proposes the freshest, and decides on a majority
    of acks; participants nack and move on when the detector suspects the
    coordinator.  Decisions propagate by an echo broadcast.

    Experiment E13 sweeps the initial suspicion threshold against the delay
    distribution to trade false-suspicion rate against decision latency. *)

type msg

module Make (K : sig
  val tick : float
  (** heartbeat / detector period *)

  val initial_threshold : int
  (** ticks of silence before a first suspicion *)
end) : Sim.Engine.APP with type msg = msg

module App : Sim.Engine.APP with type msg = msg
(** [Make] with tick 0.5 and threshold 4 — suited to the default
    Uniform(0.1, 1.0) delays. *)
