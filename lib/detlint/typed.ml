(* The typed tier's source of truth: an index over the [.cmt] files dune
   already produces ([-bin-annot] is on in every stanza).  Each cmt holds the
   typedtree of one compilation unit plus the path of the source it came
   from; the index maps scanned source paths back to those trees and
   precomputes, sequentially at build time, everything the per-file checks
   will want to look up:

   - type declarations, so the poly-compare classifier can expand
     abbreviations and walk variant/record bodies across files;
   - per-function effect summaries (see {!Effects}), so the escape and
     purity analyses are interprocedural within the indexed set.

   All tables are frozen before any rule runs, so per-file checks are pure
   lookups and the report stays byte-identical at every [--jobs].

   Identifier scoping: OCaml ident stamps are unique only within one
   compilation unit, so stamped (local) names key per-unit tables under
   ["Unit:ident_stamp"], while cross-unit references key a global table
   under normalized dotted names ("Flp__Value.compare_msg") — the same
   spelling {!Tast.lookup_candidates} produces from a use-site [Path.t]. *)

type entry = {
  modname : string;  (* compilation unit, e.g. "Flp__Zoo" *)
  source_path : string list;  (* cmt-recorded path, split on '/', "."/".." dropped *)
  str : Typedtree.structure;
}

type index = {
  entries : entry list;
  decls : (string, string * Types.type_declaration) Hashtbl.t;
      (* dotted name -> owning unit * decl *)
  local_decls : (string, string * Types.type_declaration) Hashtbl.t;
      (* "Unit:t_123" -> owning unit * decl *)
  fns : (string, Effects.t) Hashtbl.t;  (* dotted name -> summary *)
  local_fns : (string, Effects.t) Hashtbl.t;  (* "Unit:f_42" -> summary *)
}

(* One source under typed audit: the scanned path (echoed into findings) plus
   its typedtree and the index it can resolve through. *)
type source = { spath : string; modname : string; str : Typedtree.structure; index : index }

let split_path p =
  List.filter (fun s -> s <> "" && s <> "." && s <> "..") (String.split_on_char '/' p)

(* --- table registration -------------------------------------------------- *)

let local_key modname id = modname ^ ":" ^ Ident.unique_name id

let register_decls index ~modname str =
  let rec str_items prefix items =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_type (_, decls) ->
            List.iter
              (fun (d : Typedtree.type_declaration) ->
                let payload = (modname, d.typ_type) in
                Hashtbl.replace index.local_decls (local_key modname d.typ_id) payload;
                Hashtbl.replace index.decls
                  (String.concat "." (prefix @ [ Ident.name d.typ_id ]))
                  payload)
              decls
        | Tstr_module mb -> bind_module prefix mb
        | Tstr_recmodule mbs -> List.iter (bind_module prefix) mbs
        | _ -> ())
      items
  and bind_module prefix (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | None -> ()
    | Some id -> module_expr (prefix @ [ Ident.name id ]) mb.mb_expr
  and module_expr prefix (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure s -> str_items prefix s.str_items
    | Tmod_constraint (me, _, _, _) -> module_expr prefix me
    | Tmod_functor (_, body) -> module_expr prefix body
    | _ -> ()
  in
  str_items [ modname ] str.Typedtree.str_items

let register_fns index ~modname str =
  let rec str_items prefix items =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) when Effects.is_function vb.vb_expr ->
                    let summary = Effects.of_function vb.vb_expr in
                    Hashtbl.replace index.local_fns (local_key modname id) summary;
                    Hashtbl.replace index.fns
                      (String.concat "." (prefix @ [ Ident.name id ]))
                      summary
                | _ -> ())
              vbs
        | Tstr_module mb -> bind_module prefix mb
        | Tstr_recmodule mbs -> List.iter (bind_module prefix) mbs
        | _ -> ())
      items
  and bind_module prefix (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | None -> ()
    | Some id -> module_expr (prefix @ [ Ident.name id ]) mb.mb_expr
  and module_expr prefix (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure s -> str_items prefix s.str_items
    | Tmod_constraint (me, _, _, _) -> module_expr prefix me
    | Tmod_functor (_, body) -> module_expr prefix body
    | _ -> ()
  in
  str_items [ modname ] str.Typedtree.str_items

(* Stamp-keyed registration sweeps the whole tree, catching declarations the
   dotted-prefix walk cannot name: modules packed inside expressions
   ([(module struct ... end)]), functor bodies, local lets.  Stamps are
   unique within the unit, so no prefix is needed, and overlaps with the
   dotted walk replace identical payloads. *)
let register_local index ~modname str =
  let it =
    {
      Tast_iterator.default_iterator with
      type_declarations =
        (fun sub (rf, decls) ->
          List.iter
            (fun (d : Typedtree.type_declaration) ->
              Hashtbl.replace index.local_decls (local_key modname d.typ_id)
                (modname, d.typ_type))
            decls;
          Tast_iterator.default_iterator.type_declarations sub (rf, decls));
      value_binding =
        (fun sub (vb : Typedtree.value_binding) ->
          (match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) when Effects.is_function vb.vb_expr ->
              Hashtbl.replace index.local_fns (local_key modname id)
                (Effects.of_function vb.vb_expr)
          | _ -> ());
          Tast_iterator.default_iterator.value_binding sub vb);
    }
  in
  it.structure it str

let empty_index () =
  {
    entries = [];
    decls = Hashtbl.create 256;
    local_decls = Hashtbl.create 256;
    fns = Hashtbl.create 256;
    local_fns = Hashtbl.create 256;
  }

let build units =
  let index = { (empty_index ()) with entries = units } in
  List.iter
    (fun (e : entry) ->
      register_decls index ~modname:e.modname e.str;
      register_fns index ~modname:e.modname e.str;
      register_local index ~modname:e.modname e.str)
    units;
  index

(* --- cmt discovery ------------------------------------------------------- *)

let rec walk_cmts acc dir =
  match Sys.is_directory dir with
  | true ->
      (* detlint: allow unordered-iteration -- entries are sorted with String.compare on the next line, before the order can escape *)
      let entries = Sys.readdir dir in
      Array.sort String.compare entries;
      Array.fold_left (fun acc name -> walk_cmts acc (Filename.concat dir name)) acc entries
  | false -> if Filename.check_suffix dir ".cmt" then dir :: acc else acc
  | exception Sys_error _ -> acc

let read_unit path =
  match Cmt_format.read_cmt path with
  | { cmt_annots = Cmt_format.Implementation str; cmt_modname; cmt_sourcefile = Some src; _ }
    when Filename.check_suffix src ".ml" ->
      Some { modname = cmt_modname; source_path = split_path src; str }
  | _ -> None
  | exception _ -> None

let load ~cmt_dir =
  if not (Sys.file_exists cmt_dir && Sys.is_directory cmt_dir) then
    Error (Printf.sprintf "cmt directory not found: %s (build with dune first)" cmt_dir)
  else
    let cmts = List.rev (walk_cmts [] cmt_dir) in
    (* A source can be compiled into several units (a library and an
       executable both listing it); keep the first in sorted cmt order so
       the pick is deterministic. *)
    let seen = Hashtbl.create 64 in
    let units =
      List.filter_map
        (fun path ->
          match read_unit path with
          | Some u ->
              let key = String.concat "/" u.source_path in
              if Hashtbl.mem seen key then None
              else begin
                Hashtbl.add seen key ();
                Some u
              end
          | None -> None)
        cmts
    in
    if units = [] then
      Error (Printf.sprintf "no .cmt files under %s (build with dune first)" cmt_dir)
    else Ok (build units)

(* Match a scanned path against the cmt-recorded one by comparing path-segment
   suffixes: the audit may run from the checkout root ("lib/flp/zoo.ml") or
   from _build ("../lib/flp/zoo.ml") while the cmt records the context-root
   spelling.  Longest suffix wins; ties break on sorted entry order. *)
let lookup index ~path =
  let scanned = split_path path in
  let suffix_len a b =
    (* length of the longest common suffix of two segment lists *)
    let rec go n = function
      | x :: xs, y :: ys when String.equal x y -> go (n + 1) (xs, ys)
      | _ -> n
    in
    go 0 (List.rev a, List.rev b)
  in
  let base = match List.rev scanned with b :: _ -> Some b | [] -> None in
  match base with
  | None -> None
  | Some base ->
      let best =
        List.fold_left
          (fun acc e ->
            match List.rev e.source_path with
            | b :: _ when String.equal b base ->
                let n = suffix_len scanned e.source_path in
                let full = min (List.length scanned) (List.length e.source_path) in
                if n = full then
                  match acc with
                  | Some (m, _) when m >= n -> acc
                  | _ -> Some (n, e)
                else acc
            | _ -> acc)
          None index.entries
      in
      Option.map (fun (_, e) -> e) best

let source_of index ~path =
  Option.map
    (fun (e : entry) -> { spath = path; modname = e.modname; str = e.str; index })
    (lookup index ~path)

(* --- in-process fixture typing ------------------------------------------- *)

(* Type an in-memory fixture against the installed stdlib, producing a
   [source] whose index contains just itself.  The compiler front end (lexer
   buffers, env caches, type levels) is global mutable state, so the whole
   pipeline runs under the one parser mutex. *)
let fixture_count = ref 0

let fixture ~path text =
  Mutex.protect Source.parser_mutex (fun () ->
      incr fixture_count;
      let modname = Printf.sprintf "Detlint_fixture_%d" !fixture_count in
      match
        Compmisc.init_path ();
        let env = Compmisc.initial_env () in
        let lexbuf = Lexing.from_string text in
        Lexing.set_filename lexbuf path;
        let ast = Parse.implementation lexbuf in
        Typemod.type_structure env ast
      with
      | str, _, _, _, _ ->
          let unit = { modname; source_path = split_path path; str } in
          let index = build [ unit ] in
          Ok { spath = path; modname; str; index }
      | exception exn -> (
          match Location.error_of_exn exn with
          | Some (`Ok report) ->
              Error (Format.asprintf "%a" Location.print_report report)
          | _ -> Error (Printexc.to_string exn)))
