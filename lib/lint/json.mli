(** Compatibility re-export of the shared {!Flp_json} library.

    The JSON tree, serialisers, and parser live in [lib/json] (shared with
    [lib/obs] and the benches); [Lint.Json.t] is an alias for {!Flp_json.t},
    so values flow freely between the two names. *)

include module type of struct
  include Flp_json
end
