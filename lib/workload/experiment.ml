type aggregate = {
  trials : int;
  all_decided : int;
  blocked : int;
  limited : int;
  agreement_violations : int;
  validity_violations : int;
  decision_time : Stats.Summary.t;
  messages : Stats.Summary.t;
  steps : Stats.Summary.t;
  decided_processes : Stats.Summary.t;
}

let empty () =
  {
    trials = 0;
    all_decided = 0;
    blocked = 0;
    limited = 0;
    agreement_violations = 0;
    validity_violations = 0;
    decision_time = Stats.Summary.create ();
    messages = Stats.Summary.create ();
    steps = Stats.Summary.create ();
    decided_processes = Stats.Summary.create ();
  }

let summary_to_json s =
  let f v = Flp_json.Float v in
  Flp_json.Obj
    [
      ("count", Flp_json.Int (Stats.Summary.count s));
      ("mean", f (Stats.Summary.mean s));
      ("stddev", f (Stats.Summary.stddev s));
      ("min", f (Stats.Summary.min s));
      ("max", f (Stats.Summary.max s));
      ("p50", f (Stats.Summary.percentile s 50.0));
      ("p90", f (Stats.Summary.percentile s 90.0));
      ("p99", f (Stats.Summary.percentile s 99.0));
    ]

let aggregate_to_json a =
  Flp_json.Obj
    [
      ("trials", Flp_json.Int a.trials);
      ("all_decided", Flp_json.Int a.all_decided);
      ("blocked", Flp_json.Int a.blocked);
      ("limited", Flp_json.Int a.limited);
      ("agreement_violations", Flp_json.Int a.agreement_violations);
      ("validity_violations", Flp_json.Int a.validity_violations);
      ("decision_time", summary_to_json a.decision_time);
      ("messages", summary_to_json a.messages);
      ("steps", summary_to_json a.steps);
      ("decided_processes", summary_to_json a.decided_processes);
    ]

let pp_aggregate ppf a =
  Format.fprintf ppf
    "trials=%d decided=%d blocked=%d limited=%d agree-viol=%d valid-viol=%d | time %a | msgs %a"
    a.trials a.all_decided a.blocked a.limited a.agreement_violations a.validity_violations
    Stats.Summary.pp a.decision_time Stats.Summary.pp a.messages

module Async (A : Sim.Engine.APP) = struct
  module E = Sim.Engine.Make (A)

  let run_one cfg = E.run cfg

  let run ?(obs = Obs.disabled) ~seeds ~cfg () =
    List.fold_left
      (fun acc seed ->
        let c = cfg ~seed in
        let r = E.run ~obs c in
        let last_decision =
          Array.fold_left
            (fun m t -> if Float.is_nan t then m else Float.max m t)
            0.0 r.decision_times
        in
        if Sim.Engine.decided_count r > 0 then
          Stats.Summary.add acc.decision_time last_decision;
        Stats.Summary.add acc.messages (float_of_int r.sent);
        Stats.Summary.add acc.steps (float_of_int r.steps);
        Stats.Summary.add acc.decided_processes
          (float_of_int (Sim.Engine.decided_count r));
        {
          acc with
          trials = acc.trials + 1;
          all_decided = (acc.all_decided + if r.outcome = Sim.Engine.All_decided then 1 else 0);
          blocked = (acc.blocked + if r.outcome = Sim.Engine.Quiescent then 1 else 0);
          limited = (acc.limited + if r.outcome = Sim.Engine.Limit_reached then 1 else 0);
          agreement_violations =
            (acc.agreement_violations + if Sim.Engine.agreement_ok r then 0 else 1);
          validity_violations =
            (acc.validity_violations
            + if Sim.Engine.validity_ok ~inputs:c.inputs r then 0 else 1);
        })
      (empty ()) seeds
end

module Round (A : Sim.Sync.ROUND_APP) = struct
  module S = Sim.Sync.Make (A)

  let run_one = S.run

  let run ~seeds ~cfg () =
    List.fold_left
      (fun acc seed ->
        let c = cfg ~seed in
        let r = S.run c in
        let decided = Array.exists (fun d -> d <> None) r.decisions in
        let all_live_decided =
          (* live = never crashed in this schedule *)
          Array.for_all Fun.id
            (Array.mapi
               (fun pid d -> d <> None || c.crashes.(pid) <> None)
               r.decisions)
        in
        let last_round =
          Array.fold_left (fun m rd -> if rd >= 0 then max m rd else m) 0 r.decision_rounds
        in
        if decided then Stats.Summary.add acc.decision_time (float_of_int last_round);
        Stats.Summary.add acc.messages (float_of_int r.sent);
        Stats.Summary.add acc.steps (float_of_int r.rounds);
        Stats.Summary.add acc.decided_processes
          (float_of_int
             (Array.fold_left (fun k d -> if d = None then k else k + 1) 0 r.decisions));
        let validity_ok =
          Array.for_all
            (function
              | None -> true
              | Some v -> Array.exists (fun x -> x = v) c.inputs)
            r.decisions
        in
        {
          acc with
          trials = acc.trials + 1;
          all_decided = (acc.all_decided + if all_live_decided then 1 else 0);
          blocked =
            (acc.blocked + if (not all_live_decided) && r.rounds < c.max_rounds then 1 else 0);
          limited =
            (acc.limited + if (not all_live_decided) && r.rounds >= c.max_rounds then 1 else 0);
          agreement_violations =
            (acc.agreement_violations + if Sim.Sync.agreement_ok r then 0 else 1);
          validity_violations = (acc.validity_violations + if validity_ok then 0 else 1);
        })
      (empty ()) seeds
end
