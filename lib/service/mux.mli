(** Instance multiplexer: thousands of concurrent decrees over one engine.

    {!Make} turns a single-decree protocol {!Decree.S} plus a workload
    configuration into one {!Sim.Engine.APP} whose [n] processes are the
    service replicas.  Each replica keeps an instance table (instance id →
    decree state); messages travel in instance-tagged envelopes and are
    routed to their decree, lazily creating passive replica state on first
    contact.  Decree-local timers are remapped onto fresh engine tags
    through a per-replica dispatch table, and decree-level [Decide] actions
    are {e intercepted} — the engine's per-process output register is
    write-once, so decisions are recorded in the {!Collector} instead (the
    engine run always ends [Quiescent], by drain).

    Clients are logical entities living on their owner replica (client [c]
    belongs to replica [c mod n]) and driven entirely by engine timers, so
    the whole workload stays inside simulated time.  Owner replicas run the
    closed/open loop of {!Gen}, a FIFO command queue, batching (up to
    [batch] commands ride one decree) and pipelining (at most [pipeline]
    decrees of one owner in flight).  Instance ids are allocated as
    [k * n + owner], so owners never collide without coordination.

    Command latency is measured from submission (enqueue at the owner) to
    the owner learning the decree's decision — queueing delay included,
    which is what an end-to-end client would see. *)

module type CFG = sig
  val clients : int
  (** Total logical clients, assigned round-robin to replicas. *)

  val load : Gen.t

  val batch : int
  (** Max commands per decree (≥ 1). *)

  val pipeline : int
  (** Max in-flight decrees per owner (≥ 1). *)

  val collector : Collector.t

  val now : unit -> float
  (** Current simulated time; wire to {!Sim.Engine.Make.run_observed}. *)
end

module Make (D : Decree.S) (C : CFG) : Sim.Engine.APP
