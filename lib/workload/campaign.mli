(** Torture-campaign runner: a protocol × policy × seed grid, in parallel.

    A campaign pits a set of {e arms} — each a protocol under one
    adversarial scheduling policy — against a shared list of seeds, runs
    every (arm, seed) trial through {!Parallel.Pool} (order-preserving, so
    results are byte-identical at every [jobs] level), and folds each arm's
    trials into a {!cell}: an {!Experiment.aggregate} plus a termination
    probability with a 95% normal-approximation confidence interval and an
    empirical survival curve S(t) = P(still undecided at simulated time t).

    This is the measurement half of the adversarial-scheduling story: the
    policies in {!Sched.Policy} supply the torture, the campaign quantifies
    how much longer (or whether) consensus survives it.  [flp_torture]
    drives it from the command line and serialises {!to_json} into
    [BENCH_adversary.json]. *)

type trial = {
  outcome : Sim.Engine.outcome;
  last_decision : float;  (** NaN when nobody decided *)
  decided : int;  (** processes that wrote their output register *)
  sent : int;
  delivered : int;
  steps : int;
  end_time : float;
  agreement : bool;
  validity : bool;
}

type arm = {
  protocol : string;  (** display name, e.g. ["ben-or"] *)
  policy : string;  (** display name, e.g. ["starve:0"] *)
  run : seed:int -> trial;  (** one independent trial; must be domain-safe *)
}

type cell = {
  protocol : string;
  policy : string;
  aggregate : Experiment.aggregate;
  termination_probability : float;  (** all-decided trials / trials *)
  termination_ci95 : float;  (** half-width, 1.96·sqrt(p(1-p)/n) *)
  survival : (float * float) array;
      (** [(t, S(t))] at each completion time, sorted by [t]; never reaches
          0 while some trial stayed undecided *)
  latency_hist : Stats.Histogram.t;
      (** decision-latency distribution over the cell's fully-decided
          trials: one set of bounds shared by every cell of the campaign
          (default [\[0, 20)] over 40 bins, saturating edges), so cells are
          comparable across arms and serialised as [decision_latency_hist]
          in {!to_json} (with its [lo]/[hi]/[nbins] recorded) *)
}

type t = { seeds : int list; cells : cell list }

val trial_of_result : inputs:int array -> Sim.Engine.result -> trial
(** Project an engine result into a campaign trial. *)

val sim_arm :
  (module Sim.Engine.APP) ->
  protocol:string ->
  policy:string ->
  spec:Sched.Spec.t ->
  cfg:(seed:int -> Sim.Engine.cfg) ->
  arm
(** An arm over a simulator application: each trial builds [cfg ~seed],
    installs [Sched.Policy.factory spec] as the engine's scheduler, and
    runs.  Adaptive policies (the valency chaser) need typed access to
    payloads and cannot be built this way — construct their [arm.run] by
    hand around [Sim.Engine.Make(App).run_scheduled]. *)

val run :
  ?jobs:int ->
  ?obs:Obs.t ->
  ?hist_lo:float ->
  ?hist_hi:float ->
  ?hist_bins:int ->
  arms:arm list ->
  seeds:int list ->
  unit ->
  t
(** Run the full grid.  [jobs] (default 1) sizes the domain pool; results
    are independent of it.  [hist_lo]/[hist_hi]/[hist_bins] (default 0, 20,
    40) bound every cell's latency histogram.  A live [obs] records
    [campaign.time], [campaign.arms], [campaign.trials] and the pool's own
    metrics. *)

val cell_of_trials :
  ?hist_lo:float ->
  ?hist_hi:float ->
  ?hist_bins:int ->
  protocol:string ->
  policy:string ->
  trial list ->
  cell
(** Fold trials into a cell (exposed for tests and custom runners). *)

val to_json : ?meta:(string * Flp_json.t) list -> t -> Flp_json.t
(** The [BENCH_adversary.json] document: schema tag, trial count, optional
    extra [meta] fields, then one record per cell
    ({!Experiment.aggregate_to_json} plus termination probability and the
    survival curve). *)

val pp_cell : Format.formatter -> cell -> unit
val pp : Format.formatter -> t -> unit
