(** Run rule sets over packed protocols and aggregate reports.

    This is the layer both the CLI ({!val:exit_code} makes it a CI gate) and
    the tests drive: pick rules, pick protocols, get {!Report.t}s back.  A
    rule implementation that itself raises — which only happens for protocols
    broken in ways the rules' own guards didn't anticipate — is downgraded to
    an [Info] "rule aborted" note rather than crashing the audit. *)

type opts = {
  rules : Rule.t list;  (** rules to run, in order *)
  rule_opts : Rules.opts;
}

val default_opts : opts
(** All of {!Rule.all} with {!Rules.default_opts}. *)

val lint : ?obs:Obs.t -> ?opts:opts -> Flp.Protocol.t -> Report.t
(** Audit one packed protocol: walk its reachable configurations once, then
    run every selected rule against the walk.

    [obs] (default {!Obs.disabled}) records the [lint.walk] timer plus, per
    rule, a [lint.rule.<name>] wall-time timer and a [lint.findings.<name>]
    counter, and emits [lint.walk] / [lint.rule] spans when tracing. *)

val lint_many :
  ?obs:Obs.t -> ?opts:opts -> ?jobs:int -> Flp.Protocol.t list -> Report.t list
(** Audit a batch.  [jobs] (default [1]) audits up to that many protocols
    concurrently on a domain pool; reports are returned in input order
    either way, so the output is independent of [jobs].  [obs] is threaded
    into every audit; per-rule timers then aggregate across protocols, and
    the pool contributes its [pool.*] metrics. *)

val exit_code : Report.t list -> int
(** [1] when any report carries an [Error]-severity finding, [0] otherwise. *)
