module type ROUND_APP = sig
  type state
  type msg

  val name : string
  val init : n:int -> pid:int -> input:int -> rng:Rng.t -> state
  val send : n:int -> round:int -> pid:int -> state -> (int * msg) list
  val recv : n:int -> round:int -> pid:int -> state -> (int * msg) list -> state
  val output : state -> int option
end

type crash = { round : int; sends_before_crash : int }

type cfg = {
  n : int;
  inputs : int array;
  crashes : crash option array;
  loss : round:int -> src:int -> dest:int -> bool;
  max_rounds : int;
  seed : int;
}

let no_loss ~round:_ ~src:_ ~dest:_ = false

let default_cfg ~n ~inputs ~seed =
  { n; inputs; crashes = Array.make n None; loss = no_loss; max_rounds = 1000; seed }

type result = {
  decisions : int option array;
  decision_rounds : int array;
  rounds : int;
  sent : int;
  delivered : int;
  violations : string list;
}

let agreement_ok r =
  let seen = ref None in
  Array.for_all
    (function
      | None -> true
      | Some v -> (
          match !seen with
          | None ->
              seen := Some v;
              true
          | Some w -> v = w))
    r.decisions

module Make (A : ROUND_APP) = struct
  let run cfg =
    if Array.length cfg.inputs <> cfg.n then invalid_arg "Sync.run: inputs length";
    let master = Rng.create cfg.seed in
    let rngs = Array.init cfg.n (fun _ -> Rng.split master) in
    let states =
      Array.init cfg.n (fun pid -> A.init ~n:cfg.n ~pid ~input:cfg.inputs.(pid) ~rng:rngs.(pid))
    in
    let decisions = Array.make cfg.n None in
    let decision_rounds = Array.make cfg.n (-1) in
    let violations = ref [] in
    let sent = ref 0 in
    let delivered = ref 0 in
    (* A process is silent from the round after its crash; in its crash round
       only a prefix of its outbox escapes. *)
    let crashed_before pid round =
      match cfg.crashes.(pid) with Some c -> c.round < round | None -> false
    in
    let record_outputs round =
      Array.iteri
        (fun pid st ->
          if not (crashed_before pid (round + 1)) then
            match (A.output st, decisions.(pid)) with
            | Some v, None ->
                decisions.(pid) <- Some v;
                decision_rounds.(pid) <- round
            | Some v, Some w when v <> w ->
                violations := Printf.sprintf "p%d changed decision %d->%d" pid w v :: !violations
            | _ -> ())
        states
    in
    record_outputs 0;
    let all_live_decided round =
      let ok = ref true in
      for pid = 0 to cfg.n - 1 do
        if (not (crashed_before pid round)) && decisions.(pid) = None then ok := false
      done;
      !ok
    in
    let round = ref 0 in
    let running = ref true in
    while !running do
      incr round;
      let r = !round in
      if r > cfg.max_rounds || all_live_decided r then begin
        decr round;
        running := false
      end
      else begin
        let inboxes = Array.make cfg.n [] in
        for pid = 0 to cfg.n - 1 do
          if not (crashed_before pid r) then begin
            let outbox = A.send ~n:cfg.n ~round:r ~pid states.(pid) in
            let limit =
              match cfg.crashes.(pid) with
              | Some c when c.round = r -> c.sends_before_crash
              | _ -> List.length outbox
            in
            List.iteri
              (fun i (dest, msg) ->
                if i < limit && dest >= 0 && dest < cfg.n then begin
                  incr sent;
                  if not (cfg.loss ~round:r ~src:pid ~dest) then begin
                    incr delivered;
                    inboxes.(dest) <- (pid, msg) :: inboxes.(dest)
                  end
                end)
              outbox
          end
        done;
        for pid = 0 to cfg.n - 1 do
          if not (crashed_before pid (r + 1)) then begin
            let inbox = List.sort (fun (a, _) (b, _) -> compare a b) inboxes.(pid) in
            states.(pid) <- A.recv ~n:cfg.n ~round:r ~pid states.(pid) inbox
          end
        done;
        record_outputs r
      end
    done;
    {
      decisions;
      decision_rounds;
      rounds = !round;
      sent = !sent;
      delivered = !delivered;
      violations = List.rev !violations;
    }
end
