(** Rule implementations: untyped scans over one source's parsetree.

    Each rule matches identifier paths (with and without an explicit
    [Stdlib.] prefix) rather than types — see the per-rule docs in {!Rule}
    for exactly what is and is not caught.  Findings carry the lexer's
    locations, so they point at the offending expression, not the enclosing
    binding. *)

val check : Source.t -> Rule.t -> Finding.t list
(** Raw findings for one rule, before suppressions are applied.  A source
    whose AST failed to parse yields no findings here except for
    [bad-suppression], which only needs the comment text. *)

val check_all : ?rules:Rule.t list -> Source.t -> Finding.t list
(** All requested rules (default: the whole catalogue), canonically sorted
    with {!Finding.compare}. *)
