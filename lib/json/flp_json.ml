type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* [indent < 0] means compact; otherwise the current indentation depth. *)
let rec render buf ~indent t =
  let pretty = indent >= 0 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let sep_nl () = if pretty then Buffer.add_char buf '\n' in
  let items ~open_c ~close_c render_item = function
    | [] ->
        Buffer.add_char buf open_c;
        Buffer.add_char buf close_c
    | xs ->
        Buffer.add_char buf open_c;
        sep_nl ();
        List.iteri
          (fun i x ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              sep_nl ()
            end;
            pad (indent + 1);
            render_item x)
          xs;
        sep_nl ();
        pad indent;
        Buffer.add_char buf close_c
  in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no nan/infinity literals; those degrade to null *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
  | Str s -> add_escaped buf s
  | List xs ->
      items ~open_c:'[' ~close_c:']'
        (fun x -> render buf ~indent:(if pretty then indent + 1 else indent) x)
        xs
  | Obj fields ->
      items ~open_c:'{' ~close_c:'}'
        (fun (k, v) ->
          add_escaped buf k;
          Buffer.add_string buf (if pretty then ": " else ":");
          render buf ~indent:(if pretty then indent + 1 else indent) v)
        fields

let to_string t =
  let buf = Buffer.create 256 in
  render buf ~indent:(-1) t;
  Buffer.contents buf

let to_string_pretty t =
  let buf = Buffer.create 1024 in
  render buf ~indent:0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

(* Recursive-descent parser, strict enough to round-trip everything the
   serialiser above can produce (and ordinary hand-written JSON). *)

exception Fail of string * int

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail (Printf.sprintf "expected %C, found %C" c d)
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              (* Combine a surrogate pair when one follows; lone surrogates
                 degrade to U+FFFD rather than failing the whole document. *)
              let cp =
                if cp >= 0xD800 && cp <= 0xDBFF
                   && !pos + 1 < n
                   && s.[!pos] = '\\'
                   && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  else 0xFFFD
                end
                else if cp >= 0xD800 && cp <= 0xDFFF then 0xFFFD
                else cp
              in
              Buffer.add_utf_8_uchar buf
                (if Uchar.is_valid cp then Uchar.of_int cp else Uchar.rep)
          | Some c -> fail (Printf.sprintf "invalid escape \\%C" c)
          | None -> fail "unterminated escape");
          go ()
      | Some c when Char.code c < 0x20 -> fail "unescaped control character in string"
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail "malformed number"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Fail (msg, p) -> Error (Printf.sprintf "at offset %d: %s" p msg)
