type dest = Chan of out_channel | Buf of Buffer.t

type t = Null | Out of { dest : dest; lock : Mutex.t }

let null = Null

let of_channel oc = Out { dest = Chan oc; lock = Mutex.create () }

let of_buffer b = Out { dest = Buf b; lock = Mutex.create () }

let is_null = function Null -> true | Out _ -> false

let emit t json =
  match t with
  | Null -> ()
  | Out { dest; lock } ->
      (* Render outside the lock; the lock only serialises the write so
         concurrent emitters cannot interleave halves of two records. *)
      let line = Flp_json.to_string json in
      Mutex.lock lock;
      (match dest with
      | Chan oc ->
          output_string oc line;
          output_char oc '\n'
      | Buf b ->
          Buffer.add_string b line;
          Buffer.add_char b '\n');
      Mutex.unlock lock

exception Unwritable of { path : string; reason : string }

let () =
  Printexc.register_printer (function
    | Unwritable { path; reason } ->
        Some (Printf.sprintf "cannot open %s for writing: %s" path reason)
    | _ -> None)

let open_out_checked path =
  try open_out path with Sys_error reason -> raise (Unwritable { path; reason })

let with_file path f =
  let oc = open_out_checked path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f (of_channel oc))
