(** Nested span tracing over a JSONL sink.

    A {e span} wraps a computation and emits one record when it finishes:
    [{"type":"span","name":…,"start_s":…,"dur_s":…,"depth":…, attrs…}] with
    times relative to the tracer's origin.  An {e event} is an instantaneous
    record ([{"type":"event","name":…,"t_s":…,"depth":…, attrs…}]).  [depth]
    is the nesting level at entry, so a consumer can rebuild the tree even
    though spans appear in completion order (children before parents).

    Extra [attrs] are spliced into the record after the reserved fields —
    keep keys distinct from [type]/[name]/[t_s]/[start_s]/[dur_s]/[depth].

    The tracer is safe to share across domains (the sink write and the depth
    counter are mutex-protected), but depth only reflects true nesting when
    spans are opened and closed from one domain — the intended use is tracing
    the driving domain while worker domains record {!Metrics}. *)

type t

val disabled : t
(** Spans run their thunk directly; events vanish.  Zero-cost: no clock
    reads, no allocation. *)

val create : ?origin:float -> Sink.t -> t
(** A live tracer writing to the sink.  [origin] (default: now) is the
    {!Clock} instant all timestamps are relative to.  Passing {!Sink.null}
    yields {!disabled}. *)

val enabled : t -> bool

val span : t -> ?attrs:(string * Flp_json.t) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span; the record is emitted when the thunk
    returns {e or raises} (the exception is re-raised). *)

val event : t -> ?attrs:(string * Flp_json.t) list -> string -> unit
