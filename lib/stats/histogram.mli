(** Fixed-width histograms for latency / round-count distributions. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Values outside [\[lo, hi)] land in saturating edge bins. *)

val add : t -> float -> unit

val count : t -> int

val bin_count : t -> int -> int
(** Occupancy of bin [i] (0-based). *)

val bin_bounds : t -> int -> float * float

val mode_bin : t -> int
(** Index of the fullest bin ([-1] when empty). *)

val pp : Format.formatter -> t -> unit
(** ASCII bar rendering, one line per non-empty bin. *)
