(* The adversarial-scheduler stack: Sim.Scheduler mechanism, the lib/sched
   policy zoo, the admissibility guard, the valency chaser, and the
   Workload.Campaign runner. *)

module E = Sim.Engine
module S = Sim.Scheduler
module Benor = Sim.Engine.Make (Protocols.Benor.App)
module Tpc = Sim.Engine.Make (Protocols.Two_phase_commit.App)

let cfg_with ?(spec = Sched.Spec.Oblivious) base =
  { base with E.sched = Sched.Policy.factory spec }

let check_float = Alcotest.(check (float 0.0))

(* ------------------------------------------------------------------ *)
(* Pinned regression: the default (oblivious, heap-served) schedule is
   bit-identical to the engine's pre-scheduler behaviour.  The constants
   below were captured on the commit preceding this feature. *)

let benor_n3_cfg seed = E.default_cfg ~n:3 ~inputs:[| 0; 1; 1 |] ~seed

let benor_n5_cfg seed =
  {
    (E.default_cfg ~n:5 ~inputs:[| 0; 1; 0; 1; 1 |] ~seed) with
    E.delays = Sim.Delay.Exponential 0.4;
  }

let tpc_cfg seed =
  {
    (E.default_cfg ~n:4 ~inputs:[| 1; 1; 1; 1 |] ~seed) with
    E.crash_times = [| None; Some 0.5; None; None |];
  }

let check_pinned name (r : E.result) ~sent ~delivered ~steps ~end_time ~decisions
    ~times ~outcome =
  Alcotest.(check int) (name ^ " sent") sent r.sent;
  Alcotest.(check int) (name ^ " delivered") delivered r.delivered;
  Alcotest.(check int) (name ^ " steps") steps r.steps;
  check_float (name ^ " end_time") end_time r.end_time;
  Alcotest.(check bool) (name ^ " outcome") true (r.outcome = outcome);
  Alcotest.(check (array (option int))) (name ^ " decisions") decisions r.decisions;
  Array.iteri
    (fun i t ->
      if Float.is_nan t then
        Alcotest.(check bool)
          (Printf.sprintf "%s d%d nan" name i)
          true
          (Float.is_nan r.decision_times.(i))
      else check_float (Printf.sprintf "%s d%d" name i) t r.decision_times.(i))
    times

let pinned_benor_n3 name r =
  check_pinned name r ~sent:20 ~delivered:10 ~steps:10
    ~end_time:0.87495475653007415
    ~decisions:[| Some 1; Some 1; Some 1 |]
    ~times:[| 0.53771458265350169; 0.84241969953027085; 0.87495475653007415 |]
    ~outcome:E.All_decided

let pinned_benor_n5 name r =
  check_pinned name r ~sent:100 ~delivered:69 ~steps:69
    ~end_time:0.91319600448857696
    ~decisions:[| Some 1; Some 1; Some 1; Some 1; Some 1 |]
    ~times:
      [|
        0.75824311514571496;
        0.91319600448857696;
        0.84880579618664853;
        0.77877587333630793;
        0.86630623731089951;
      |]
    ~outcome:E.All_decided

let pinned_tpc name r =
  check_pinned name r ~sent:5 ~delivered:4 ~steps:5 ~end_time:1.1161206912481996
    ~decisions:[| None; None; None; None |]
    ~times:[| nan; nan; nan; nan |]
    ~outcome:E.Quiescent

let test_pinned_default () =
  pinned_benor_n3 "benor/heap" (Benor.run (benor_n3_cfg 42));
  pinned_benor_n5 "benor5/heap" (Benor.run (benor_n5_cfg 7));
  pinned_tpc "2pc/heap" (Tpc.run (tpc_cfg 11))

(* The Oblivious spec maps to the heap path (factory = None)... *)
let test_oblivious_factory_is_none () =
  Alcotest.(check bool)
    "factory Oblivious = None" true
    (Option.is_none (Sched.Policy.factory Sched.Spec.Oblivious))

(* ...and the table-served oblivious policy replays the same schedule
   bit-for-bit, so either path is the same adversary. *)
let test_pinned_table_oblivious () =
  let sched = Some (fun () -> Sched.Policy.oblivious ()) in
  pinned_benor_n3 "benor/table" (Benor.run { (benor_n3_cfg 42) with E.sched });
  pinned_benor_n5 "benor5/table" (Benor.run { (benor_n5_cfg 7) with E.sched });
  pinned_tpc "2pc/table" (Tpc.run { (tpc_cfg 11) with E.sched })

let results_equal (a : E.result) (b : E.result) =
  a.decisions = b.decisions
  && a.sent = b.sent && a.delivered = b.delivered && a.steps = b.steps
  && a.end_time = b.end_time && a.outcome = b.outcome
  && Array.for_all2
       (fun x y -> x = y || (Float.is_nan x && Float.is_nan y))
       a.decision_times b.decision_times

let test_table_oblivious_equals_heap () =
  let sched = Some (fun () -> Sched.Policy.oblivious ()) in
  for seed = 1 to 20 do
    let heap = Benor.run (benor_n3_cfg seed) in
    let table = Benor.run { (benor_n3_cfg seed) with E.sched } in
    Alcotest.(check bool)
      (Printf.sprintf "benor seed %d" seed)
      true (results_equal heap table);
    let heap = Tpc.run (tpc_cfg seed) in
    let table = Tpc.run { (tpc_cfg seed) with E.sched } in
    Alcotest.(check bool)
      (Printf.sprintf "2pc seed %d" seed)
      true (results_equal heap table)
  done

(* ------------------------------------------------------------------ *)
(* Spec parsing *)

let test_spec_roundtrip () =
  List.iter
    (fun spec ->
      let s = Sched.Spec.to_string spec in
      match Sched.Spec.of_string s with
      | Ok spec' -> Alcotest.(check bool) ("roundtrip " ^ s) true (spec = spec')
      | Error e -> Alcotest.fail e)
    Sched.Spec.
      [
        Oblivious;
        Fifo;
        Lifo;
        Starve 2;
        Partition { block = [ 0; 2 ]; rejoin_at = 1.5 };
        Round_robin_killer;
        Admissible { budget = 32; inner = Starve 0 };
        Admissible { budget = 4; inner = Admissible { budget = 9; inner = Lifo } };
      ]

let test_spec_errors () =
  List.iter
    (fun s ->
      match Sched.Spec.of_string s with
      | Ok _ -> Alcotest.fail (s ^ " should not parse")
      | Error _ -> ())
    [
      "";
      "random";
      "starve";
      "starve:-1";
      "starve:x";
      "partition:@1";
      "partition:0+-2@1";
      "partition:0+2@nan";
      "admissible:0:fifo";
      "admissible:8:";
      "admissible:8:chaser";
    ]

(* ------------------------------------------------------------------ *)
(* Policy zoo sanity: every blind policy yields a safe terminating
   Ben-Or run (policies reorder, they cannot drop or invent events). *)

let test_policies_safe () =
  List.iter
    (fun spec ->
      for seed = 1 to 10 do
        let cfg = cfg_with ~spec (benor_n3_cfg seed) in
        let r = Benor.run cfg in
        let name =
          Printf.sprintf "%s seed %d" (Sched.Spec.to_string spec) seed
        in
        Alcotest.(check bool) (name ^ " decided") true (r.outcome = E.All_decided);
        Alcotest.(check bool) (name ^ " agreement") true (E.agreement_ok r);
        Alcotest.(check bool)
          (name ^ " validity") true
          (E.validity_ok ~inputs:[| 0; 1; 1 |] r)
      done)
    Sched.Spec.
      [
        Fifo;
        Lifo;
        Starve 0;
        Starve 2;
        Partition { block = [ 0 ]; rejoin_at = 2.0 };
        Round_robin_killer;
        Admissible { budget = 8; inner = Lifo };
        Admissible { budget = 16; inner = Starve 1 };
      ]

let mean_last_decision spec seeds =
  let sum = ref 0.0 and count = ref 0 in
  List.iter
    (fun seed ->
      let r = Benor.run (cfg_with ~spec (benor_n3_cfg seed)) in
      Array.iter
        (fun t ->
          if not (Float.is_nan t) then begin
            sum := !sum +. t;
            incr count
          end)
        [| Array.fold_left Float.max 0.0 r.decision_times |])
    seeds;
  !sum /. float_of_int !count

(* The acceptance criterion: starvation demonstrably delays consensus. *)
let test_starve_slower_than_oblivious () =
  let seeds = List.init 15 (fun i -> i + 1) in
  let obliv = mean_last_decision Sched.Spec.Oblivious seeds in
  let starve = mean_last_decision (Sched.Spec.Starve 0) seeds in
  Alcotest.(check bool)
    (Printf.sprintf "starve (%.2f) > oblivious (%.2f)" starve obliv)
    true (starve > obliv)

(* ------------------------------------------------------------------ *)
(* The admissibility guard *)

(* A protocol that never decides and never quiesces on its own: everyone
   broadcasts one batch at init and ignores everything — so the engine
   drains the whole buffer under any policy, making "every message is
   eventually delivered" directly observable. *)
module Sink = struct
  type state = unit
  type msg = unit

  let name = "sink"
  let init ~n:_ ~pid:_ ~input:_ ~rng:_ = ((), [ E.Broadcast (); E.Broadcast () ])
  let on_message ~n:_ ~pid:_ () ~src:_ () = ((), [])
  let on_timer ~n:_ ~pid:_ () ~tag:_ = ((), [])
end

module Sink_engine = E.Make (Sink)

let test_admissible_delivers_everything () =
  List.iter
    (fun budget ->
      for seed = 1 to 5 do
        let spec =
          Sched.Spec.Admissible { budget; inner = Sched.Spec.Starve 0 }
        in
        let cfg = cfg_with ~spec (E.default_cfg ~n:4 ~inputs:[| 0; 1; 0; 1 |] ~seed) in
        let r = Sink_engine.run cfg in
        Alcotest.(check bool) "quiescent" true (r.outcome = E.Quiescent);
        Alcotest.(check int)
          (Printf.sprintf "budget %d seed %d: all delivered" budget seed)
          r.sent r.delivered
      done)
    [ 1; 4; 64 ]

let test_admissible_guard_stats () =
  (* Victim 0's messages are systematically overtaken by Starve 0, so a
     small budget must force deliveries; the overtake count never exceeds
     the budget. *)
  let budget = 2 in
  let policy, stats =
    Sched.Admissible.wrap_stats ~budget (S.lift (Sched.Policy.starve ~victim:0 ()))
  in
  let cfg = E.default_cfg ~n:4 ~inputs:[| 0; 1; 0; 1 |] ~seed:3 in
  let r = Sink_engine.run_scheduled ~policy cfg in
  Alcotest.(check int) "all delivered" r.sent r.delivered;
  Alcotest.(check bool) "guard forced deliveries" true (stats.Sched.Admissible.forced > 0);
  Alcotest.(check bool)
    (Printf.sprintf "max_overtaken %d <= budget" stats.Sched.Admissible.max_overtaken)
    true
    (stats.Sched.Admissible.max_overtaken <= budget)

let test_admissible_bad_budget () =
  Alcotest.check_raises "budget 0"
    (Invalid_argument "Sched.Admissible.wrap: budget must be >= 1")
    (fun () -> ignore (Sched.Admissible.wrap ~budget:0 (S.lift (Sched.Policy.fifo ()))))

(* ------------------------------------------------------------------ *)
(* The Model_app bridge and the valency chaser *)

let race3 () =
  match Flp.Zoo.find "race:3" with
  | Some p -> p
  | None -> Alcotest.fail "zoo lost race:3"

let test_model_app_n_mismatch () =
  let p = race3 () in
  let module P = (val p : Flp.Protocol.S) in
  let module M = Sched.Model_app.Make (P) in
  let module ME = E.Make (M) in
  let cfg = E.default_cfg ~n:2 ~inputs:[| 1; 0 |] ~seed:1 in
  match ME.run cfg with
  | _ -> Alcotest.fail "n mismatch should raise"
  | exception Invalid_argument _ -> ()

let test_model_app_agreement () =
  let p = race3 () in
  let module P = (val p : Flp.Protocol.S) in
  let module M = Sched.Model_app.Make (P) in
  let module ME = E.Make (M) in
  for seed = 1 to 20 do
    let cfg = E.default_cfg ~n:3 ~inputs:[| 1; 1; 0 |] ~seed in
    let r = ME.run cfg in
    Alcotest.(check bool) "agreement" true (E.agreement_ok r);
    Alcotest.(check bool) "validity" true (E.validity_ok ~inputs:[| 1; 1; 0 |] r)
  done

let test_chaser_suppresses_decisions () =
  let p = race3 () in
  let module P = (val p : Flp.Protocol.S) in
  let module M = Sched.Model_app.Make (P) in
  let module ME = E.Make (M) in
  let module Ch = Sched.Chaser.Make (P) in
  let inputs = [| 1; 1; 0 |] in
  let vinputs = Array.map Flp.Value.of_int inputs in
  let cache = Ch.cache () in
  let seeds = List.init 20 (fun i -> i + 1) in
  let decided_with run =
    List.fold_left
      (fun acc seed ->
        let cfg = E.default_cfg ~n:3 ~inputs ~seed in
        acc + E.decided_count (run cfg))
      0 seeds
  in
  let oblivious = decided_with (fun cfg -> ME.run cfg) in
  let total_diverged = ref 0 in
  let chased =
    decided_with (fun cfg ->
        let policy, stats = Ch.policy ~max_configs:600_000 ~cache ~inputs:vinputs () in
        let r = ME.run_scheduled ~policy cfg in
        total_diverged := !total_diverged + stats.Sched.Chaser.diverged;
        r)
  in
  let guarded =
    decided_with (fun cfg ->
        let policy, _ = Ch.policy ~max_configs:600_000 ~cache ~inputs:vinputs () in
        let policy = Sched.Admissible.wrap ~budget:16 policy in
        ME.run_scheduled ~policy cfg)
  in
  Alcotest.(check int) "mirror never diverged" 0 !total_diverged;
  Alcotest.(check bool)
    (Printf.sprintf "chaser (%d) < oblivious (%d) decisions" chased oblivious)
    true (chased < oblivious);
  Alcotest.(check bool)
    (Printf.sprintf "admissible chaser (%d) < oblivious (%d) decisions" guarded oblivious)
    true (guarded < oblivious)

let test_chaser_cache_shared () =
  let p = race3 () in
  let module P = (val p : Flp.Protocol.S) in
  let module M = Sched.Model_app.Make (P) in
  let module ME = E.Make (M) in
  let module Ch = Sched.Chaser.Make (P) in
  let inputs = [| 1; 1; 0 |] in
  let vinputs = Array.map Flp.Value.of_int inputs in
  let cache = Ch.cache () in
  let run seed =
    let policy, stats = Ch.policy ~max_configs:600_000 ~cache ~inputs:vinputs () in
    ignore (ME.run_scheduled ~policy (E.default_cfg ~n:3 ~inputs ~seed));
    stats
  in
  let first = run 1 in
  let second = run 2 in
  Alcotest.(check int) "one exploration total" 1
    (first.Sched.Chaser.oracle_calls + second.Sched.Chaser.oracle_calls);
  Alcotest.(check bool) "second run served from cache" true
    (second.Sched.Chaser.cache_hits > 0);
  Alcotest.(check int) "no overflow" 0
    (first.Sched.Chaser.incomplete + second.Sched.Chaser.incomplete)

(* ------------------------------------------------------------------ *)
(* Campaign runner *)

let campaign_arms () =
  List.map
    (fun spec ->
      Workload.Campaign.sim_arm
        (module Protocols.Benor.App)
        ~protocol:"ben-or"
        ~policy:(Sched.Spec.to_string spec)
        ~spec
        ~cfg:(fun ~seed -> E.default_cfg ~n:3 ~inputs:[| 0; 1; 1 |] ~seed))
    Sched.Spec.[ Oblivious; Starve 0; Admissible { budget = 16; inner = Starve 0 } ]

let test_campaign_deterministic_across_jobs () =
  let seeds = List.init 12 (fun i -> i + 1) in
  let json jobs =
    Flp_json.to_string
      (Workload.Campaign.to_json
         (Workload.Campaign.run ~jobs ~arms:(campaign_arms ()) ~seeds ()))
  in
  let j1 = json 1 in
  Alcotest.(check string) "jobs=1 equals jobs=3" j1 (json 3);
  Alcotest.(check string) "jobs=1 equals jobs=4" j1 (json 4)

let test_campaign_cells () =
  let seeds = List.init 10 (fun i -> i + 1) in
  let t = Workload.Campaign.run ~arms:(campaign_arms ()) ~seeds () in
  Alcotest.(check int) "one cell per arm" 3 (List.length t.Workload.Campaign.cells);
  List.iter
    (fun (c : Workload.Campaign.cell) ->
      Alcotest.(check int) "trials" 10 c.aggregate.Workload.Experiment.trials;
      check_float "ben-or always terminates" 1.0 c.termination_probability;
      Alcotest.(check bool) "survival sorted, decreasing" true
        (let s = c.survival in
         let ok = ref true in
         for i = 1 to Array.length s - 1 do
           let t0, s0 = s.(i - 1) and t1, s1 = s.(i) in
           if t1 < t0 || s1 > s0 then ok := false
         done;
         !ok);
      Alcotest.(check bool) "survival ends at 0" true
        (Array.length c.survival > 0 && snd c.survival.(Array.length c.survival - 1) = 0.0))
    t.Workload.Campaign.cells

let test_campaign_json_roundtrip () =
  let seeds = List.init 5 (fun i -> i + 1) in
  let t = Workload.Campaign.run ~arms:(campaign_arms ()) ~seeds () in
  let s =
    Flp_json.to_string (Workload.Campaign.to_json ~meta:[ ("n", Flp_json.Int 3) ] t)
  in
  match Flp_json.of_string s with
  | Error e -> Alcotest.fail e
  | Ok json ->
      Alcotest.(check bool) "schema tag" true
        (Flp_json.member "schema" json = Some (Flp_json.Str "flp.campaign.v1"));
      Alcotest.(check bool) "meta carried" true
        (Flp_json.member "n" json = Some (Flp_json.Int 3));
      (match Flp_json.member "cells" json with
      | Some (Flp_json.List cells) -> Alcotest.(check int) "cells" 3 (List.length cells)
      | _ -> Alcotest.fail "cells missing")

let () =
  Alcotest.run "sched"
    [
      ( "regression",
        [
          Alcotest.test_case "pinned default schedule" `Quick test_pinned_default;
          Alcotest.test_case "oblivious factory is heap" `Quick test_oblivious_factory_is_none;
          Alcotest.test_case "pinned table oblivious" `Quick test_pinned_table_oblivious;
          Alcotest.test_case "table == heap across seeds" `Quick test_table_oblivious_equals_heap;
        ] );
      ( "spec",
        [
          Alcotest.test_case "roundtrip" `Quick test_spec_roundtrip;
          Alcotest.test_case "errors" `Quick test_spec_errors;
        ] );
      ( "policies",
        [
          Alcotest.test_case "safe under every policy" `Quick test_policies_safe;
          Alcotest.test_case "starve delays consensus" `Quick test_starve_slower_than_oblivious;
        ] );
      ( "admissible",
        [
          Alcotest.test_case "delivers everything" `Quick test_admissible_delivers_everything;
          Alcotest.test_case "guard stats" `Quick test_admissible_guard_stats;
          Alcotest.test_case "bad budget" `Quick test_admissible_bad_budget;
        ] );
      ( "chaser",
        [
          Alcotest.test_case "bridge n mismatch" `Quick test_model_app_n_mismatch;
          Alcotest.test_case "bridge agreement" `Quick test_model_app_agreement;
          Alcotest.test_case "suppresses decisions" `Quick test_chaser_suppresses_decisions;
          Alcotest.test_case "cache shared" `Quick test_chaser_cache_shared;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "deterministic across jobs" `Quick test_campaign_deterministic_across_jobs;
          Alcotest.test_case "cells" `Quick test_campaign_cells;
          Alcotest.test_case "json roundtrip" `Quick test_campaign_json_roundtrip;
        ] );
    ]
