(** Deterministic cross-shard merge of service measurements.

    Shards are independent engine runs (parallel universes of the same
    service); the merge folds them in shard order, so the report is a pure
    function of the cell configuration — byte-identical JSON at every
    [--jobs].  Throughput treats the shards as a fleet: total work over the
    slowest shard's simulated makespan.  Host wall-clock numbers exist in
    the frozen shards but enter the JSON only under [~wall:true], keeping
    the committed artifact machine-independent. *)

type t = {
  shards : Collector.shard array;
  submitted : int;
  completed : int;
  opened : int;
  decided : int;
  learns : int;
  peak_inflight_max : int;  (** largest single-run in-flight high-water mark *)
  peak_inflight_sum : int;  (** fleet-wide peak (shards run concurrently) *)
  makespan : float;  (** max over shards of the last completion instant *)
  decisions_per_sec : float;  (** decided instances / makespan; [nan] if none *)
  commands_per_sec : float;  (** completed commands / makespan; [nan] if none *)
  mean_latency : float;
  p50 : float;
  p99 : float;
  p999 : float;
  max_latency : float;
  fairness : float;
      (** max/min completed commands per client; [infinity] when some client
          finished nothing (renders as JSON null) *)
  completion_rate : float;  (** completed / submitted commands; [nan] if none *)
  hist : Stats.Histogram.t;  (** latency histogram over all shards *)
}

val of_shards :
  ?hist_lo:float -> ?hist_hi:float -> ?hist_bins:int -> Collector.shard list -> t
(** Histogram bounds default to [\[0, 20)] × 40 bins, matching
    {!Workload.Campaign}. *)

val to_json : ?wall:bool -> t -> Flp_json.t
(** [wall] (default [false]) adds per-shard and total host wall-clock
    seconds — never enable it for committed artifacts. *)

val pp : Format.formatter -> t -> unit
