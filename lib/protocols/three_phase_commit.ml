type pstate = S_init | S_wait | S_pre | S_committed | S_aborted

type msg =
  | Vote_req
  | Vote of int
  | Pre_commit
  | Ack
  | Commit
  | Abort
  | Inquiry  (** recovery coordinator asking for states *)
  | State_report of pstate
      (** reply to an inquiry; also sent spontaneously on timeout to the next
          coordinator in line, which is what triggers the election *)

let timeout_delay = 5.0

module App = struct
  type state = {
    pid : int;
    vote : int;
    ps : pstate;
    coord : int;  (* who this process currently believes coordinates *)
    epoch : int;  (* invalidates stale timers *)
    votes : (int * int) list;  (* coordinator: collected votes *)
    acks : int list;  (* coordinator: collected acks *)
    reports : (int * pstate) list;  (* recovery coordinator: collected states *)
    inquiring : bool;
  }

  type nonrec msg = msg

  let name = "3pc"

  let terminal st = st.ps = S_committed || st.ps = S_aborted

  let arm st = ({ st with epoch = st.epoch + 1 }, Sim.Engine.Set_timer (timeout_delay, st.epoch + 1))

  let decide_commit st = ({ st with ps = S_committed }, [ Sim.Engine.Decide 1 ])

  let decide_abort st = ({ st with ps = S_aborted }, [ Sim.Engine.Decide 0 ])

  let broadcast_outcome st o =
    let st, acts = if o = 1 then decide_commit st else decide_abort st in
    (st, Sim.Engine.Broadcast (if o = 1 then Commit else Abort) :: acts)

  let init ~n ~pid ~input ~rng:_ =
    let st =
      {
        pid;
        vote = input;
        ps = S_init;
        coord = 0;
        epoch = 0;
        votes = [];
        acks = [];
        reports = [];
        inquiring = false;
      }
    in
    if pid = 0 then begin
      if input = 0 then
        let st, acts = broadcast_outcome st 0 in
        (st, acts)
      else begin
        let st = { st with votes = [ (0, 1) ]; ps = S_wait } in
        if n = 1 then broadcast_outcome st 1
        else begin
          let st, timer = arm st in
          (st, [ Sim.Engine.Broadcast Vote_req; timer ])
        end
      end
    end
    else begin
      let st, timer = arm st in
      (st, [ timer ])
    end

  (* Recovery resolution rule (crash-stop, at most one fault): a committed or
     pre-committed survivor forces commit — pre-commit proves every process
     voted yes and no abort was ever sent; otherwise abort is safe. *)
  let resolve_reports reports =
    if List.exists (fun (_, s) -> s = S_committed || s = S_pre) reports then 1
    else if List.exists (fun (_, s) -> s = S_aborted) reports then 0
    else 0

  let start_inquiry st =
    let st = { st with coord = st.pid; inquiring = true; reports = [ (st.pid, st.ps) ] } in
    let st, timer = arm st in
    (st, [ Sim.Engine.Broadcast Inquiry; timer ])

  let on_message ~n ~pid:_ st ~src msg =
    match msg with
    | Vote_req ->
        if terminal st || st.ps <> S_init then (st, [])
        else if st.vote = 0 then
          let st, acts = decide_abort st in
          (st, Sim.Engine.Send (src, Vote 0) :: acts)
        else begin
          let st, timer = arm { st with ps = S_wait } in
          (st, [ Sim.Engine.Send (src, Vote 1); timer ])
        end
    | Vote v ->
        if terminal st || st.pid <> st.coord || List.mem_assoc src st.votes then (st, [])
        else begin
          let votes = (src, v) :: st.votes in
          if v = 0 then broadcast_outcome { st with votes } 0
          else if List.length votes = n then begin
            let st, timer = arm { st with votes; ps = S_pre; acks = [] } in
            (st, [ Sim.Engine.Broadcast Pre_commit; timer ])
          end
          else ({ st with votes }, [])
        end
    | Pre_commit ->
        if terminal st || st.ps <> S_wait then (st, [])
        else begin
          let st, timer = arm { st with ps = S_pre; coord = src } in
          (st, [ Sim.Engine.Send (src, Ack); timer ])
        end
    | Ack ->
        if terminal st || st.ps <> S_pre || st.pid <> st.coord || List.mem src st.acks then
          (st, [])
        else begin
          let acks = src :: st.acks in
          (* every yes-voter other than the coordinator must ack *)
          let expected = List.length st.votes - 1 in
          if List.length acks >= expected then broadcast_outcome { st with acks } 1
          else ({ st with acks }, [])
        end
    | Commit -> if terminal st then (st, []) else decide_commit st
    | Abort -> if terminal st then (st, []) else decide_abort st
    | Inquiry ->
        (* Answer with our state; adopt the inquirer as coordinator and keep a
           timer running in case it also dies. *)
        if terminal st then (st, [ Sim.Engine.Send (src, State_report st.ps) ])
        else begin
          let st, timer = arm { st with coord = src; inquiring = false } in
          (st, [ Sim.Engine.Send (src, State_report st.ps); timer ])
        end
    | State_report s ->
        if terminal st then
          (* a timed-out process escalated to us after we finished: relay *)
          (st, [ Sim.Engine.Send (src, if st.ps = S_committed then Commit else Abort) ])
        else if st.inquiring then begin
          let reports =
            if List.mem_assoc src st.reports then st.reports else (src, s) :: st.reports
          in
          ({ st with reports }, [])
        end
        else
          (* someone escalated to us: run the termination protocol *)
          start_inquiry { st with reports = [] }

  let on_timer ~n ~pid:_ st ~tag =
    if tag <> st.epoch || terminal st then (st, [])
    else if st.inquiring then
      (* collection window over: resolve from whatever arrived *)
      broadcast_outcome st (resolve_reports st.reports)
    else if st.pid = st.coord then begin
      (* original coordinator timing out: missing votes mean a crash before
         pre-commit (abort); missing acks mean a crash after (commit) *)
      match st.ps with
      | S_wait -> broadcast_outcome st 0
      | S_pre -> broadcast_outcome st 1
      | S_init | S_committed | S_aborted -> (st, [])
    end
    else begin
      (* escalate to the next coordinator in line *)
      let next = (st.coord + 1) mod n in
      if next = st.pid then start_inquiry st
      else begin
        let st, timer = arm { st with coord = next } in
        (st, [ Sim.Engine.Send (next, State_report st.ps); timer ])
      end
    end
end
