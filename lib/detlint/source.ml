type t = {
  path : string;
  text : string;
  ast : (Parsetree.structure, string * int) result;
}

(* compiler-libs' [Lexer] keeps its comment and string buffers in global
   mutable state, so two domains parsing at once corrupt each other (an
   assertion deep in lexer.mll).  One process-wide mutex serialises the
   parse; rule scans over the resulting (immutable) parsetrees still run
   fully in parallel. *)
let parser_mutex = Mutex.create ()

let parse ~path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  match Mutex.protect parser_mutex (fun () -> Parse.implementation lexbuf) with
  | ast -> Ok ast
  | exception exn ->
      (* The parser's own exceptions carry rich locations but a formatter-based
         rendering; the current lexer position is enough for a diagnostic. *)
      let line = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum in
      let msg =
        match exn with
        | Syntaxerr.Error _ -> "syntax error"
        | exn -> Printexc.to_string exn
      in
      Error (msg, max 1 line)

let of_string ~path text = { path; text; ast = parse ~path text }

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> Ok (of_string ~path text)
  | exception Sys_error msg -> Error msg

let lines t = String.split_on_char '\n' t.text
