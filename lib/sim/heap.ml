type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int; mutable next_seq : int }

let create () = { data = [||]; len = 0; next_seq = 0 }

let is_empty h = h.len = 0

let size h = h.len

let clear h =
  h.data <- [||];
  h.len <- 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h entry =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let nd = Array.make ncap entry in
    Array.blit h.data 0 nd 0 h.len;
    h.data <- nd
  end

let push h ~time value =
  let entry = { time; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  grow h entry;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  (* Sift up. *)
  let i = ref (h.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    if before h.data.(!i) h.data.(parent) then begin
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent;
      true
    end
    else false
  do
    ()
  done

let pop h =
  if h.len = 0 then None
  else begin
    let root = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && before h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.len && before h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (root.time, root.value)
  end

let peek_time h = if h.len = 0 then None else Some h.data.(0).time
