(** JSONL output sinks.

    A sink consumes {!Flp_json.t} documents and writes each as one compact
    line — the JSON-Lines format shared by metrics dumps, span traces, and
    the benchmark artifacts, so one parser reads them all.  Writes are
    serialised by a mutex, so any domain may emit; records from concurrent
    emitters never interleave within a line. *)

type t

val null : t
(** Discards everything.  {!emit} on it is a single pattern match. *)

val of_channel : out_channel -> t
(** The caller retains ownership of the channel (closing, flushing). *)

val of_buffer : Buffer.t -> t
(** Collect records in memory — for tests and round-trips. *)

val is_null : t -> bool

val emit : t -> Flp_json.t -> unit
(** Append one record as a compact single line terminated by ['\n']. *)

exception Unwritable of { path : string; reason : string }
(** Raised (instead of a bare [Sys_error]) when an output path cannot be
    opened, so CLIs can fail fast with the offending path before doing any
    work.  A printer is registered, so an uncaught one still names the
    path. *)

val open_out_checked : string -> out_channel
(** [open_out] that raises {!Unwritable} rather than [Sys_error]. *)

val with_file : string -> (t -> 'a) -> 'a
(** [with_file path f] opens (truncates) [path], applies [f] to a sink over
    it, and closes the file even if [f] raises.  Raises {!Unwritable} when
    the path cannot be opened. *)
