module IntMap = Map.Make (Int)

type msg =
  | Heartbeat
  | Estimate of { round : int; x : int; ts : int }
  | Propose of { round : int; v : int }
  | Ack of int
  | Nack of int
  | Decide of int

let tick_tag = 0

module Make (K : sig
  val tick : float

  val initial_threshold : int
end) =
struct
  type peer = { silence : int; threshold : int; suspected : bool }

  type state = {
    pid : int;
    x : int;
    ts : int;  (* round of the proposal we last adopted *)
    round : int;
    waiting_propose : bool;  (* sent our estimate, awaiting the coordinator *)
    estimates : (int * int) list IntMap.t;  (* round -> (x, ts) list, as coordinator *)
    proposals : int IntMap.t;  (* round -> v we proposed, as coordinator *)
    acks : int IntMap.t;
    nacks : int IntMap.t;
    peers : peer IntMap.t;
    decided : bool;
  }

  type nonrec msg = msg

  let name = Printf.sprintf "chandra-toueg:%g:%d" K.tick K.initial_threshold

  let coord_of ~n round = round mod n

  let majority n = (n / 2) + 1

  let enter_round ~n st round =
    let st = { st with round; waiting_propose = true } in
    (st, [ Sim.Engine.Send (coord_of ~n round, Estimate { round; x = st.x; ts = st.ts }) ])

  (* Coordinator logic: propose once a majority of estimates for a round we
     lead has arrived; decide once a majority of acks has.  Broadcast skips
     the sender, so when the coordinator proposes for its own current round
     it must apply the participant transition (adopt, self-ack, move on)
     locally — otherwise a round can never reach a majority of acks once
     [n - majority n] processes have crashed. *)
  let coordinator_try ~n st round acts =
    let acts = ref acts in
    let st = ref st in
    (match IntMap.find_opt round !st.estimates with
    | Some ests
      when List.length ests >= majority n && not (IntMap.mem round !st.proposals) ->
        let _, best =
          List.fold_left
            (fun (bts, bx) (x, ts) -> if ts >= bts then (ts, x) else (bts, bx))
            (-1, 0) ests
        in
        st := { !st with proposals = IntMap.add round best !st.proposals };
        acts := !acts @ [ Sim.Engine.Broadcast (Propose { round; v = best }) ];
        if round = !st.round && !st.waiting_propose then begin
          let self_acks = 1 + Option.value (IntMap.find_opt round !st.acks) ~default:0 in
          st :=
            {
              !st with
              x = best;
              ts = round;
              waiting_propose = false;
              acks = IntMap.add round self_acks !st.acks;
            };
          let st', acts' = enter_round ~n !st (round + 1) in
          st := st';
          acts := !acts @ acts'
        end
    | _ -> ());
    (match (IntMap.find_opt round !st.acks, IntMap.find_opt round !st.proposals) with
    | Some a, Some v when a >= majority n && not !st.decided ->
        st := { !st with decided = true };
        acts := !acts @ [ Sim.Engine.Decide v; Sim.Engine.Broadcast (Decide v) ]
    | _ -> ());
    (!st, !acts)

  let init ~n ~pid ~input ~rng:_ =
    let peers =
      List.fold_left
        (fun acc q ->
          if q = pid then acc
          else
            IntMap.add q { silence = 0; threshold = K.initial_threshold; suspected = false } acc)
        IntMap.empty
        (List.init n Fun.id)
    in
    let st =
      {
        pid;
        x = input;
        ts = 0;
        round = 0;
        waiting_propose = false;
        estimates = IntMap.empty;
        proposals = IntMap.empty;
        acks = IntMap.empty;
        nacks = IntMap.empty;
        peers;
        decided = false;
      }
    in
    let st, acts = enter_round ~n st 1 in
    (st, (Sim.Engine.Set_timer (K.tick, tick_tag) :: Sim.Engine.Broadcast Heartbeat :: acts))

  let on_message ~n ~pid st ~src msg =
    if st.decided then
      (* stay quiet except for relaying the decision to late askers *)
      match msg with
      | Estimate { round; _ } when coord_of ~n round = pid -> (st, [])
      | _ -> (st, [])
    else
      match msg with
      | Heartbeat ->
          let peers =
            IntMap.update src
              (function
                | None -> None
                | Some p ->
                    Some
                      {
                        silence = 0;
                        threshold = (if p.suspected then p.threshold + 2 else p.threshold);
                        suspected = false;
                      })
              st.peers
          in
          ({ st with peers }, [])
      | Decide v ->
          ({ st with x = v; decided = true },
           [ Sim.Engine.Decide v; Sim.Engine.Broadcast (Decide v) ])
      | Estimate { round; x; ts } ->
          if coord_of ~n round <> pid then (st, [])
          else begin
            let ests = Option.value (IntMap.find_opt round st.estimates) ~default:[] in
            let st = { st with estimates = IntMap.add round ((x, ts) :: ests) st.estimates } in
            let st, acts = coordinator_try ~n st round [] in
            (st, acts)
          end
      | Propose { round; v } ->
          if round <> st.round || not st.waiting_propose || src <> coord_of ~n round then
            (st, [])
          else begin
            let st = { st with x = v; ts = round; waiting_propose = false } in
            let st, acts = enter_round ~n st (round + 1) in
            (st, (Sim.Engine.Send (src, Ack round) :: acts))
          end
      | Ack round ->
          if coord_of ~n round <> pid then (st, [])
          else begin
            let a = Option.value (IntMap.find_opt round st.acks) ~default:0 in
            let st = { st with acks = IntMap.add round (a + 1) st.acks } in
            coordinator_try ~n st round []
          end
      | Nack round ->
          if coord_of ~n round <> pid then (st, [])
          else begin
            let x = Option.value (IntMap.find_opt round st.nacks) ~default:0 in
            ({ st with nacks = IntMap.add round (x + 1) st.nacks }, [])
          end

  let on_timer ~n ~pid:_ st ~tag =
    if tag <> tick_tag || st.decided then (st, [])
    else begin
      (* advance the detector: one more tick of silence everywhere *)
      let peers =
        IntMap.map
          (fun p ->
            let silence = p.silence + 1 in
            { p with silence; suspected = silence > p.threshold })
          st.peers
      in
      let st = { st with peers } in
      let suspects q =
        match IntMap.find_opt q st.peers with Some p -> p.suspected | None -> false
      in
      let st, acts =
        if st.waiting_propose && suspects (coord_of ~n st.round) then begin
          let c = coord_of ~n st.round in
          let nack = Sim.Engine.Send (c, Nack st.round) in
          let st, acts = enter_round ~n { st with waiting_propose = false } (st.round + 1) in
          (st, nack :: acts)
        end
        else (st, [])
      in
      (st, (Sim.Engine.Set_timer (K.tick, tick_tag) :: Sim.Engine.Broadcast Heartbeat :: acts))
    end
end

module App = Make (struct
  let tick = 0.5

  let initial_threshold = 4
end)
