let test_empty () =
  let g = Digraph.create 3 in
  Alcotest.(check int) "size" 3 (Digraph.size g);
  Alcotest.(check int) "edges" 0 (Digraph.edge_count g);
  Alcotest.(check bool) "no edge" false (Digraph.mem_edge g 0 1)

let test_add_edge () =
  let g = Digraph.create 3 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 1;
  (* idempotent *)
  Alcotest.(check int) "edge count" 1 (Digraph.edge_count g);
  Alcotest.(check bool) "directed" false (Digraph.mem_edge g 1 0);
  Alcotest.(check (list int)) "succs" [ 1 ] (Digraph.succs g 0);
  Alcotest.(check (list int)) "preds" [ 0 ] (Digraph.preds g 1);
  Alcotest.(check int) "out" 1 (Digraph.out_degree g 0);
  Alcotest.(check int) "in" 1 (Digraph.in_degree g 1)

let test_bounds () =
  let g = Digraph.create 2 in
  Alcotest.check_raises "range" (Invalid_argument "Digraph: node out of range") (fun () ->
      Digraph.add_edge g 0 2)

let compare_edge (a1, b1) (a2, b2) =
  match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

let compare_int_list = List.compare Int.compare

let test_of_edges_roundtrip () =
  let edges = [ (0, 1); (1, 2); (2, 0); (0, 3) ] in
  let g = Digraph.of_edges 4 edges in
  Alcotest.(check (list (pair int int))) "edges" (List.sort compare_edge edges) (Digraph.edges g)

let test_closure_chain () =
  let g = Digraph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let c = Digraph.transitive_closure g in
  Alcotest.(check bool) "0->3" true (Digraph.mem_edge c 0 3);
  Alcotest.(check bool) "0->2" true (Digraph.mem_edge c 0 2);
  Alcotest.(check bool) "3->0 absent" false (Digraph.mem_edge c 3 0);
  Alcotest.(check bool) "no self loop without cycle" false (Digraph.mem_edge c 0 0)

let test_closure_cycle_self_loops () =
  let g = Digraph.of_edges 3 [ (0, 1); (1, 0) ] in
  let c = Digraph.transitive_closure g in
  Alcotest.(check bool) "0->0 via cycle" true (Digraph.mem_edge c 0 0);
  Alcotest.(check bool) "isolated stays clean" false (Digraph.mem_edge c 2 2)

let test_ancestors_descendants () =
  let g = Digraph.of_edges 5 [ (0, 1); (1, 2); (3, 2); (2, 4) ] in
  Alcotest.(check (list int)) "ancestors of 2" [ 0; 1; 3 ] (Digraph.ancestors g 2);
  Alcotest.(check (list int)) "descendants of 0" [ 1; 2; 4 ] (Digraph.descendants g 0);
  Alcotest.(check bool) "reachable" true (Digraph.reachable g 0 4);
  Alcotest.(check bool) "not reachable" false (Digraph.reachable g 4 0)

let test_ancestors_cycle () =
  let g = Digraph.of_edges 2 [ (0, 1); (1, 0) ] in
  Alcotest.(check (list int)) "self in own ancestors via cycle" [ 0; 1 ] (Digraph.ancestors g 0)

let test_initial_clique_simple () =
  (* 0 <-> 1 form the source clique feeding 2 *)
  let g = Digraph.of_edges 3 [ (0, 1); (1, 0); (0, 2); (1, 2) ] in
  let c = Digraph.transitive_closure g in
  Alcotest.(check (list int)) "clique" [ 0; 1 ] (Digraph.initial_clique ~closure:c)

let test_initial_clique_whole () =
  let g = Digraph.of_edges 3 [ (0, 1); (1, 2); (2, 0) ] in
  let c = Digraph.transitive_closure g in
  Alcotest.(check (list int)) "whole graph" [ 0; 1; 2 ] (Digraph.initial_clique ~closure:c)

let test_sccs_known () =
  let g = Digraph.of_edges 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 3); (2, 3); (4, 5) ] in
  let comps = List.sort compare_int_list (Digraph.sccs g) in
  Alcotest.(check (list (list int))) "components" [ [ 0; 1; 2 ]; [ 3; 4 ]; [ 5 ] ] comps

let test_source_sccs () =
  let g = Digraph.of_edges 5 [ (0, 1); (1, 0); (1, 2); (3, 2); (2, 4) ] in
  let sources = List.sort compare_int_list (Digraph.source_sccs g) in
  Alcotest.(check (list (list int))) "sources" [ [ 0; 1 ]; [ 3 ] ] sources

let random_graph rng n p =
  let g = Digraph.create n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Sim.Rng.float rng 1.0 < p then Digraph.add_edge g i j
    done
  done;
  g

let graph_gen =
  QCheck.Gen.(
    map2
      (fun seed n -> random_graph (Sim.Rng.create seed) (n + 2) 0.3)
      (int_bound 10_000) (int_bound 8))

let arbitrary_graph = QCheck.make ~print:(Format.asprintf "%a" Digraph.pp) graph_gen

let prop_closure_idempotent =
  QCheck.Test.make ~name:"closure is idempotent" ~count:200 arbitrary_graph (fun g ->
      let c = Digraph.transitive_closure g in
      let cc = Digraph.transitive_closure c in
      Digraph.edges c = Digraph.edges cc)

let prop_closure_matches_reachability =
  QCheck.Test.make ~name:"closure edge iff reachable" ~count:100 arbitrary_graph (fun g ->
      let c = Digraph.transitive_closure g in
      let n = Digraph.size g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Digraph.mem_edge c i j <> Digraph.reachable g i j then ok := false
        done
      done;
      !ok)

let prop_initial_clique_is_union_of_source_sccs =
  QCheck.Test.make ~name:"initial clique = union of source SCCs of the closure" ~count:200
    arbitrary_graph (fun g ->
      let c = Digraph.transitive_closure g in
      let clique = Digraph.initial_clique ~closure:c in
      let sources = List.concat (Digraph.source_sccs c) in
      List.sort Int.compare clique = List.sort Int.compare sources)

let prop_sccs_partition =
  QCheck.Test.make ~name:"SCCs partition the nodes" ~count:200 arbitrary_graph (fun g ->
      let nodes = List.concat (Digraph.sccs g) in
      List.sort Int.compare nodes = List.init (Digraph.size g) Fun.id)

let prop_copy_independent =
  QCheck.Test.make ~name:"copy does not alias" ~count:100 arbitrary_graph (fun g ->
      let g' = Digraph.copy g in
      let before = Digraph.edges g in
      (if Digraph.size g' >= 2 then
         let i, j = (0, Digraph.size g' - 1) in
         if not (Digraph.mem_edge g' i j) then Digraph.add_edge g' i j);
      Digraph.edges g = before)

let () =
  Alcotest.run "digraph"
    [
      ( "basic",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add edge" `Quick test_add_edge;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "of_edges roundtrip" `Quick test_of_edges_roundtrip;
        ] );
      ( "closure",
        [
          Alcotest.test_case "chain" `Quick test_closure_chain;
          Alcotest.test_case "cycle self loops" `Quick test_closure_cycle_self_loops;
          Alcotest.test_case "ancestors/descendants" `Quick test_ancestors_descendants;
          Alcotest.test_case "ancestors in cycle" `Quick test_ancestors_cycle;
        ] );
      ( "clique+scc",
        [
          Alcotest.test_case "initial clique simple" `Quick test_initial_clique_simple;
          Alcotest.test_case "initial clique whole" `Quick test_initial_clique_whole;
          Alcotest.test_case "sccs known" `Quick test_sccs_known;
          Alcotest.test_case "source sccs" `Quick test_source_sccs;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_closure_idempotent;
          QCheck_alcotest.to_alcotest prop_closure_matches_reachability;
          QCheck_alcotest.to_alcotest prop_initial_clique_is_union_of_source_sccs;
          QCheck_alcotest.to_alcotest prop_sccs_partition;
          QCheck_alcotest.to_alcotest prop_copy_independent;
        ] );
    ]
