(** Ben-Or's completely asynchronous randomized binary consensus (the
    paper's ref [2], the canonical answer to FLP: give up deterministic
    termination, keep safety, terminate with probability 1).

    Tolerates [f < n/2] crash faults.  Each round has two phases:

    + every process broadcasts [Report (r, x)] and waits for [n - f] reports
      (its own included); if more than [n/2] carry the same [v] it proposes
      [v], otherwise it proposes [bot];
    + every process broadcasts its proposal and waits for [n - f] proposals;
      [f + 1] matching non-[bot] proposals let it decide [v]; one lets it
      adopt [v]; none makes it flip a local coin.

    A decision is completed by a [Decided] echo (reliable-broadcast style) so
    that slow processes terminate once any process decides.

    The [deterministic_coin] variant replaces the coin by
    [(round + pid) land 1]; under an unlucky schedule it livelocks — the
    executable version of why FLP forces randomness to be {e random}. *)

type msg

val f_of : int -> int
(** Crash-fault threshold [floor((n - 1) / 2)]. *)

module App : Sim.Engine.APP with type msg = msg
(** Coin flips drawn from the process's private RNG stream. *)

module App_det : Sim.Engine.APP with type msg = msg
(** Same protocol with the deterministic pseudo-coin. *)
