(** Fixed-width histograms for latency / round-count distributions. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Values outside [\[lo, hi)] land in saturating edge bins. *)

val add : t -> float -> unit

val count : t -> int

val bins : t -> int
(** Number of bins the histogram was created with. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram whose every bin holds the sum of the
    corresponding bins of [a] and [b]; the inputs are not modified.  Used to
    aggregate per-worker histograms recorded independently on separate
    domains.  Raises [Invalid_argument] when the bounds or bin counts
    differ. *)

val bin_count : t -> int -> int
(** Occupancy of bin [i] (0-based). *)

val bin_bounds : t -> int -> float * float

val mode_bin : t -> int
(** Index of the fullest bin ([-1] when empty). *)

val pp : Format.formatter -> t -> unit
(** ASCII bar rendering, one line per non-empty bin. *)
