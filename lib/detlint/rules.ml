(* The rule implementations: untyped single-pass scans over the parsetree.

   Working on the Parsetree (not the Typedtree) keeps the analysis dependency-
   free and able to audit sources that do not currently compile, at the cost
   of seeing names instead of types.  Each rule therefore matches identifier
   paths — with and without an explicit [Stdlib.] prefix — and leans on the
   suppression mechanism (Pragma) for the sites where the name is innocent.
   Locations come straight from the lexer, so findings point at the exact
   offending expression. *)

module StringSet = Set.Make (String)

let rec flatten_lid = function
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (l, s) -> Option.map (fun p -> p @ [ s ]) (flatten_lid l)
  | Longident.Lapply _ -> None

(* [Stdlib.Hashtbl.fold] and [Hashtbl.fold] are the same function; compare
   module paths with the explicit prefix stripped. *)
let normalize = function
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | p -> p

let path_of_expr (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> flatten_lid txt
  | _ -> None

let finding (rule : Rule.t) ~(loc : Location.t) message =
  Finding.v ~rule:rule.Rule.name ~severity:rule.Rule.severity
    ~file:loc.loc_start.Lexing.pos_fname
    ~line:loc.loc_start.Lexing.pos_lnum
    ~col:(loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol)
    ~message ~hint:rule.Rule.hint

let dotted p = String.concat "." p

(* Shared driver: walk every expression of the structure, letting the rule
   inspect each node (idents, applications) and emit findings. *)
let scan_exprs (src : Source.t) on_expr =
  match src.Source.ast with
  | Error _ -> []
  | Ok ast ->
      let acc = ref [] in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self e ->
              on_expr acc e;
              Ast_iterator.default_iterator.expr self e);
        }
      in
      it.structure it ast;
      List.rev !acc

(* Rules keyed on a set of identifier paths, with a per-path message. *)
let ident_rule rule classify src =
  scan_exprs src (fun acc (e : Parsetree.expression) ->
      match e.pexp_desc with
      | Pexp_ident { txt; loc } -> (
          match flatten_lid txt with
          | Some p -> (
              match classify p with
              | Some message -> acc := finding rule ~loc message :: !acc
              | None -> ())
          | None -> ())
      | _ -> ())

let unordered_iteration src =
  ident_rule Rule.unordered_iteration
    (fun p ->
      match normalize p with
      | [ "Hashtbl"; ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") ] ->
          Some
            (Printf.sprintf
               "%s enumerates in unspecified bucket order; anything built from \
                the raw order is schedule-dependent"
               (dotted (normalize p)))
      | [ "Sys"; "readdir" ] ->
          Some
            "Sys.readdir returns entries in unspecified filesystem order; sort \
             before the order can escape"
      | _ -> None)
    src

let sort_family = function
  | [ "List"; ("sort" | "stable_sort" | "fast_sort" | "sort_uniq" | "merge") ]
  | [ "Array"; ("sort" | "stable_sort" | "fast_sort") ]
  | [ "ListLabels"; ("sort" | "stable_sort" | "fast_sort" | "sort_uniq" | "merge") ]
  | [ "ArrayLabels"; ("sort" | "stable_sort" | "fast_sort") ] ->
      true
  | _ -> false

let poly_compare src =
  scan_exprs src (fun acc (e : Parsetree.expression) ->
      match e.pexp_desc with
      | Pexp_ident { txt; loc } -> (
          match flatten_lid txt with
          | Some [ "Stdlib"; "compare" ] ->
              acc :=
                finding Rule.poly_compare ~loc
                  "Stdlib.compare is the polymorphic structural compare: not a \
                   total order on floats (nan), raises on functions, and \
                   changes meaning when the type changes"
                :: !acc
          | Some _ | None -> ())
      | Pexp_apply (f, args) -> (
          match path_of_expr f with
          | Some fp when sort_family (normalize fp) -> (
              match
                List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args
              with
              | Some (_, cmp) -> (
                  match path_of_expr cmp with
                  | Some [ "compare" ] ->
                      acc :=
                        finding Rule.poly_compare ~loc:cmp.pexp_loc
                          (Printf.sprintf
                             "%s is called with the polymorphic compare; the \
                              element order is structural and float-unsafe"
                             (dotted (normalize fp)))
                        :: !acc
                  | Some _ | None -> ())
              | None -> ())
          | Some _ | None -> ())
      | _ -> ())

let physical_equality src =
  ident_rule Rule.physical_equality
    (fun p ->
      match normalize p with
      | [ "==" ] -> Some "(==) is physical equality: allocation- and sharing-dependent"
      | [ "!=" ] -> Some "(!=) is physical inequality: allocation- and sharing-dependent"
      | _ -> None)
    src

let ambient_time src =
  ident_rule Rule.ambient_time
    (fun p ->
      match normalize p with
      | [ "Sys"; "time" ] | [ "Unix"; "time" ] | [ "Unix"; "gettimeofday" ] ->
          Some
            (Printf.sprintf "%s reads the ambient wall clock; results become \
                             host- and load-dependent"
               (dotted (normalize p)))
      | _ -> None)
    src

let ambient_random src =
  ident_rule Rule.ambient_random
    (fun p ->
      match normalize p with
      | "Random" :: _ ->
          Some
            (Printf.sprintf
               "%s draws from the ambient stdlib Random state, invisible to \
                the replay seed"
               (dotted (normalize p)))
      | _ -> None)
    src

let marshal src =
  ident_rule Rule.marshal
    (fun p ->
      match normalize p with
      | "Marshal" :: _ | [ "output_value" ] | [ "input_value" ] ->
          Some
            (Printf.sprintf
               "%s bytes are not stable across runs or compiler versions; \
                use the typed Flp_json tree"
               (dotted (normalize p)))
      | _ -> None)
    src

(* --- unguarded-shared-mutation ------------------------------------------- *)

(* Every bare identifier mentioned anywhere under an expression: the
   conservative over-approximation of what a closure captures. *)
let idents_under (e : Parsetree.expression) =
  let set = ref StringSet.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ } -> set := StringSet.add n !set
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !set

let spawn_captures ast =
  let captured = ref StringSet.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_apply (f, args) -> (
              match path_of_expr f with
              | Some fp when normalize fp = [ "Domain"; "spawn" ] ->
                  List.iter
                    (fun (_, a) -> captured := StringSet.union !captured (idents_under a))
                    args
              | Some _ | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it ast;
  !captured

let base_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } -> Some n
  | _ -> None

(* A mutation of [Some name]: ref assignment, mutable-field set, array set. *)
let mutation_target (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_setfield (base, _, _) -> base_name base
  | Pexp_apply (f, (Asttypes.Nolabel, base) :: _) -> (
      match path_of_expr f with
      | Some [ ":=" ] | Some [ "Stdlib"; ":=" ] -> base_name base
      | Some fp when normalize fp = [ "Array"; "set" ] || normalize fp = [ "Array"; "unsafe_set" ]
        ->
          base_name base
      | Some _ | None -> None)
  | _ -> None

let guard_call (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
      match path_of_expr f with
      | Some fp -> (
          match normalize fp with
          | "Atomic" :: _ | [ "Mutex"; "protect" ] -> true
          | _ -> false)
      | None -> false)
  | _ -> false

let unguarded_shared_mutation (src : Source.t) =
  match src.Source.ast with
  | Error _ -> []
  | Ok ast ->
      let shared = spawn_captures ast in
      if StringSet.is_empty shared then []
      else begin
        let acc = ref [] in
        let guard_depth = ref 0 in
        let it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun self e ->
                (match mutation_target e with
                | Some n when !guard_depth = 0 && StringSet.mem n shared ->
                    acc :=
                      finding Rule.unguarded_shared_mutation ~loc:e.Parsetree.pexp_loc
                        (Printf.sprintf
                           "write to '%s', which is captured by a Domain.spawn \
                            closure, outside Atomic/Mutex.protect"
                           n)
                      :: !acc
                | Some _ | None -> ());
                let guarded = guard_call e in
                if guarded then incr guard_depth;
                Ast_iterator.default_iterator.expr self e;
                if guarded then decr guard_depth);
          }
        in
        it.structure it ast;
        List.rev !acc
      end

(* --- atomic-read-modify-write -------------------------------------------- *)

(* Whether [Atomic.get base] (same syntactic base ident) occurs under [e]. *)
let contains_atomic_get name (e : Parsetree.expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_apply (f, (Asttypes.Nolabel, a) :: _) -> (
              match path_of_expr f with
              | Some fp when normalize fp = [ "Atomic"; "get" ] -> (
                  match base_name a with
                  | Some n when n = name -> found := true
                  | Some _ | None -> ())
              | Some _ | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !found

let atomic_rmw src =
  scan_exprs src (fun acc (e : Parsetree.expression) ->
      match e.pexp_desc with
      | Pexp_apply (f, (Asttypes.Nolabel, a) :: (Asttypes.Nolabel, v) :: _) -> (
          match path_of_expr f with
          | Some fp when normalize fp = [ "Atomic"; "set" ] -> (
              match base_name a with
              | Some n when contains_atomic_get n v ->
                  acc :=
                    finding Rule.atomic_rmw ~loc:e.pexp_loc
                      (Printf.sprintf
                         "Atomic.set of '%s' from a value computed with \
                          Atomic.get '%s': the read-modify-write is not one \
                          atomic step, so concurrent updates are lost"
                         n n)
                    :: !acc
              | Some _ | None -> ())
          | Some _ | None -> ())
      | _ -> ())

let bad_suppression (src : Source.t) =
  let rule = Rule.bad_suppression in
  List.filter_map
    (fun (s : Pragma.t) ->
      if Pragma.valid s then None
      else
        let message =
          if s.Pragma.rule = "" then
            "suppression carries no rule id (expected: allow <rule-id> -- reason)"
          else if not (Rule.known s.Pragma.rule) then
            Printf.sprintf "suppression names unknown rule id %S" s.Pragma.rule
          else Printf.sprintf "suppression for %S carries no written reason" s.Pragma.rule
        in
        Some
          (Finding.v ~rule:rule.Rule.name ~severity:rule.Rule.severity
             ~file:s.Pragma.file ~line:s.Pragma.line ~col:0 ~message
             ~hint:rule.Rule.hint))
    (Pragma.collect src)

let check (src : Source.t) (rule : Rule.t) =
  match rule.Rule.id with
  | Rule.Unordered_iteration -> unordered_iteration src
  | Rule.Poly_compare -> poly_compare src
  | Rule.Physical_equality -> physical_equality src
  | Rule.Ambient_time -> ambient_time src
  | Rule.Ambient_random -> ambient_random src
  | Rule.Marshal -> marshal src
  | Rule.Unguarded_shared_mutation -> unguarded_shared_mutation src
  | Rule.Atomic_rmw -> atomic_rmw src
  (* typed tier only: the contract needs the resolved call graph *)
  | Rule.Purity_contract -> []
  | Rule.Bad_suppression -> bad_suppression src
  (* computed by the runner from suppression use counts; no AST scan here *)
  | Rule.Unused_suppression -> []

let check_all ?(rules = Rule.all) src =
  List.stable_sort Finding.compare (List.concat_map (fun r -> check src r) rules)
