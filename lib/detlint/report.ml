type suppression = {
  rule : string;
  file : string;
  line : int;
  reason : string;
  used : int;
}

type t = {
  roots : string list;
  files : int;
  typed : bool;
  typed_files : int;
  rules_run : string list;
  findings : Finding.t list;
  suppressions : suppression list;
}

let count sev t =
  List.length
    (List.filter (fun (f : Finding.t) -> Lint.Severity.equal f.Finding.severity sev) t.findings)

let error_count t = count Lint.Severity.Error t

let warn_count t = count Lint.Severity.Warn t

let suppressed_count t = List.fold_left (fun acc s -> acc + s.used) 0 t.suppressions

let compare_suppression a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
  | c -> c

(* Canonical order — file/line/col/rule for findings, file/line/rule for
   suppressions — so the report is byte-identical whatever order files were
   scanned or rules were scheduled in. *)
let canonical t =
  {
    t with
    findings = List.stable_sort Finding.compare t.findings;
    suppressions = List.stable_sort compare_suppression t.suppressions;
  }

let pp ppf t =
  let verdict =
    match error_count t with
    | 0 -> "clean"
    | 1 -> "1 error"
    | k -> Printf.sprintf "%d errors" k
  in
  let tier =
    if not t.typed then ""
    else Printf.sprintf ", typed %d/%d" t.typed_files t.files
  in
  Format.fprintf ppf "@[<v>== flp-detlint: %s (%d files%s, %d rules, %d findings, %d \
                      suppressions silencing %d) =="
    verdict t.files tier (List.length t.rules_run) (List.length t.findings)
    (List.length t.suppressions) (suppressed_count t);
  List.iter (fun f -> Format.fprintf ppf "@,@[<v>%a@]" Finding.pp f) t.findings;
  Format.fprintf ppf "@]"

let suppression_to_json s =
  Flp_json.Obj
    [
      ("rule", Flp_json.Str s.rule);
      ("file", Flp_json.Str s.file);
      ("line", Flp_json.Int s.line);
      ("reason", Flp_json.Str s.reason);
      ("used", Flp_json.Int s.used);
    ]

let to_json t =
  Flp_json.Obj
    [
      ("version", Flp_json.Int 2);
      ("tool", Flp_json.Str "flp-detlint");
      ("roots", Flp_json.List (List.map (fun r -> Flp_json.Str r) t.roots));
      ("files", Flp_json.Int t.files);
      ("typed", Flp_json.Bool t.typed);
      ("typed_files", Flp_json.Int t.typed_files);
      ("rules", Flp_json.List (List.map (fun r -> Flp_json.Str r) t.rules_run));
      ("findings", Flp_json.List (List.map Finding.to_json t.findings));
      ("errors", Flp_json.Int (error_count t));
      ("warnings", Flp_json.Int (warn_count t));
      ("suppressions", Flp_json.List (List.map suppression_to_json t.suppressions));
      ("suppressed", Flp_json.Int (suppressed_count t));
    ]
