(** Scan driver: directory walk, per-file audit, jobs-invariant merge.

    Files under the given roots are enumerated in sorted order, audited
    independently (optionally over a {!Parallel.Pool}, which preserves
    input order), and merged into one canonical {!Report.t} — so the report
    is byte-identical at every [--jobs] level, the same guarantee the rules
    themselves enforce on the rest of the tree. *)

val collect_files : string list -> (string list, string) result
(** [.ml] files under the roots (each a directory or a single file), sorted
    within each root, deduplicated, dot- and underscore-prefixed names
    (\[_build\]…) skipped.  [Error] when a root does not exist. *)

val check_source :
  ?rules:Rule.t list ->
  ?typed:Typed.source ->
  Source.t ->
  Finding.t list * Report.suppression list
(** Audit one in-memory source: run the rules, apply its suppressions,
    append an unsuppressible [Warn] {!Rule.unused_suppression} finding for
    every valid suppression whose target rule was selected yet silenced
    nothing, and prepend an unsuppressible [parse-error] finding when the
    source does not parse.  With [?typed], the ids {!Trules} implements run
    on the typedtree instead of the parsetree (same rule names, so the same
    pragmas govern both tiers).  The test fixtures' entry point. *)

val run :
  ?obs:Obs.t ->
  ?rules:Rule.t list ->
  ?jobs:int ->
  ?cmt_dir:string ->
  string list ->
  (Report.t, string) result
(** Audit every source under the roots.  With [?cmt_dir], build the typed
    tier's cmt index from that directory first (sequentially — per-file
    checks stay pure lookups) and audit each source whose cmt is found on
    the typed tier; sources without one fall back to the untyped pass.
    [Error] only for usage problems (missing root, unreadable or empty cmt
    directory); source-level problems are findings. *)

val exit_code : Report.t -> int
(** 1 when any error-severity finding survived, else 0 — the CI gate. *)
