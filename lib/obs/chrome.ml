type event = Flp_json.t

let meta ~pid ~tid which name =
  Flp_json.Obj
    [
      ("ph", Flp_json.Str "M");
      ("name", Flp_json.Str which);
      ("pid", Flp_json.Int pid);
      ("tid", Flp_json.Int tid);
      ("args", Flp_json.Obj [ ("name", Flp_json.Str name) ]);
    ]

let process_name ~pid name = meta ~pid ~tid:0 "process_name" name

let thread_name ~pid ~tid name = meta ~pid ~tid "thread_name" name

let base ?(cat = "") ~ph ~pid ~tid ~ts_us name rest =
  let fields =
    ("ph", Flp_json.Str ph)
    :: ("name", Flp_json.Str name)
    :: (if cat = "" then [] else [ ("cat", Flp_json.Str cat) ])
    @ ("pid", Flp_json.Int pid)
      :: ("tid", Flp_json.Int tid)
      :: ("ts", Flp_json.Float ts_us)
      :: rest
  in
  Flp_json.Obj fields

let args_field = function [] -> [] | args -> [ ("args", Flp_json.Obj args) ]

let complete ?cat ?(args = []) ~pid ~tid ~ts_us ~dur_us name =
  base ?cat ~ph:"X" ~pid ~tid ~ts_us name
    (("dur", Flp_json.Float dur_us) :: args_field args)

let instant ?cat ?(args = []) ~pid ~tid ~ts_us name =
  base ?cat ~ph:"i" ~pid ~tid ~ts_us name
    (("s", Flp_json.Str "t") :: args_field args)

let flow_start ?cat ~pid ~tid ~ts_us ~id name =
  base ?cat ~ph:"s" ~pid ~tid ~ts_us name [ ("id", Flp_json.Int id) ]

let flow_end ?cat ~pid ~tid ~ts_us ~id name =
  base ?cat ~ph:"f" ~pid ~tid ~ts_us name
    [ ("bp", Flp_json.Str "e"); ("id", Flp_json.Int id) ]

let trace events = Flp_json.Obj [ ("traceEvents", Flp_json.List events) ]

let of_span_records records =
  let str key j = match Flp_json.member key j with Some (Str s) -> Some s | _ -> None in
  let num key j =
    match Flp_json.member key j with
    | Some (Float f) -> Some f
    | Some (Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let us s = s *. 1e6 in
  List.filter_map
    (fun r ->
      match (str "type" r, str "name" r) with
      | Some "span", Some name -> (
          match (num "start_s" r, num "dur_s" r, num "depth" r) with
          | Some start, Some dur, Some depth ->
              Some
                (complete ~cat:"span" ~pid:0 ~tid:(int_of_float depth)
                   ~ts_us:(us start) ~dur_us:(us dur) name)
          | _ -> None)
      | Some "event", Some name -> (
          match (num "t_s" r, num "depth" r) with
          | Some t, Some depth ->
              Some
                (instant ~cat:"event" ~pid:0 ~tid:(int_of_float depth)
                   ~ts_us:(us t) name)
          | _ -> None)
      | _ -> None)
    records

let write_file path events =
  Sink.with_file path (fun sink -> Sink.emit sink (trace events))
